package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"revnf/internal/core"
	"revnf/internal/onsite"
	"revnf/internal/shared"
)

// testNetwork is a two-cloudlet network where every request of the test
// VNF needs 2 instances on-site (r(c)·(1-(1-r(f))^2) ≥ 0.9 holds, one
// instance does not).
func testNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 2, Reliability: 0.8},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: -1, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: -1, Capacity: 10, Reliability: 0.98},
		},
	}
}

func newTestEngine(t *testing.T, horizon int, opts ...func(*Config)) *Engine {
	t.Helper()
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Network: n, Scheduler: sched, Horizon: horizon}
	for _, opt := range opts {
		opt(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	return e
}

func submit(t *testing.T, e *Engine, ar AdmissionRequest) AdmissionResult {
	t.Helper()
	res, err := e.Submit(context.Background(), ar)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", ar, err)
	}
	return res
}

func TestEngineAdmitAndReject(t *testing.T) {
	e := newTestEngine(t, 20)
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10})
	if !res.Admitted || res.Slot != 1 {
		t.Fatalf("first request not admitted at slot 1: %+v", res)
	}
	if got := res.Placement.TotalInstances(); got != 2 {
		t.Errorf("instances = %d, want 2 (primary + backup)", got)
	}
	// A request no cloudlet can satisfy is declined by the scheduler.
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.995, Duration: 3, Payment: 10})
	if res.Admitted || res.Reason != ReasonDeclined {
		t.Errorf("infeasible requirement: %+v, want declined", res)
	}
	// Malformed model data is rejected as invalid.
	res = submit(t, e, AdmissionRequest{VNF: 7, Reliability: 0.9, Duration: 3, Payment: 10})
	if res.Admitted || res.Reason != ReasonInvalid {
		t.Errorf("unknown VNF: %+v, want invalid", res)
	}
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 0, Payment: 10})
	if res.Admitted || res.Reason != ReasonInvalid {
		t.Errorf("zero duration: %+v, want invalid", res)
	}
	// Windows beyond the horizon are rejected with their own reason.
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 21, Payment: 10})
	if res.Admitted || res.Reason != ReasonHorizon {
		t.Errorf("beyond horizon: %+v, want horizon", res)
	}
	s := e.Stats()
	if s.Admitted != 1 || s.RejectedTotal() != 4 {
		t.Errorf("stats admitted/rejected = %d/%d, want 1/4", s.Admitted, s.RejectedTotal())
	}
	if s.Revenue != 10 {
		t.Errorf("revenue = %v, want 10", s.Revenue)
	}
}

func TestEngineSlotClockExpiry(t *testing.T) {
	e := newTestEngine(t, 10)
	// Admit at slot 1 with duration 3: capacity held for slots [1,3],
	// released exactly when the clock reaches slot 4 = a + d.
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 5})
	if !res.Admitted {
		t.Fatalf("not admitted: %+v", res)
	}
	units := 2 * 2 // 2 instances × demand 2
	j := res.Placement.Assignments[0].Cloudlet
	for t0 := 1; t0 <= 3; t0++ {
		if got := e.Cloudlets()[j].Residual[t0-1]; got != 10-units {
			t.Errorf("slot %d residual = %d, want %d", t0, got, 10-units)
		}
	}
	for tick := 2; tick <= 3; tick++ {
		rep := e.Tick()
		if rep.Slot != tick || rep.Expired != 0 {
			t.Fatalf("tick to %d: %+v, want no expiry", tick, rep)
		}
	}
	rec, ok := e.Placement(res.ID)
	if !ok || rec.State != StateActive {
		t.Fatalf("placement at slot 3 = %+v, want active", rec)
	}
	rep := e.Tick() // slot 4 = a+d: release
	if rep.Slot != 4 || rep.Expired != 1 {
		t.Fatalf("tick to 4: %+v, want 1 expiry", rep)
	}
	rec, ok = e.Placement(res.ID)
	if !ok || rec.State != StateExpired {
		t.Errorf("placement after expiry = %+v, want expired", rec)
	}
	// Full capacity is back in the ledger over the whole window.
	cls := e.Cloudlets()[j]
	if cls.FromSlot != 4 {
		t.Fatalf("FromSlot = %d, want 4", cls.FromSlot)
	}
	s := e.Stats()
	if s.Expired != 1 || s.ActivePlacements != 0 {
		t.Errorf("stats expired/active = %d/%d, want 1/0", s.Expired, s.ActivePlacements)
	}
	// The released capacity is actually reusable: a duration-1 request
	// starting at slot 4 sees the full cloudlet again.
	res2 := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 5})
	if !res2.Admitted || res2.Slot != 4 {
		t.Fatalf("post-expiry admission: %+v", res2)
	}
}

func TestEngineStaleArrivalRejected(t *testing.T) {
	e := newTestEngine(t, 10)
	e.Tick()
	e.Tick() // slot 3
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 2, Duration: 2, Payment: 5})
	if res.Admitted || res.Reason != ReasonStale {
		t.Errorf("stale arrival: %+v, want stale", res)
	}
	// Arrival 0 means "now" and still works at slot 3.
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 2, Payment: 5})
	if !res.Admitted || res.Slot != 3 {
		t.Errorf("arrival=now at slot 3: %+v", res)
	}
	rec, ok := e.Placement(res.ID)
	if !ok || rec.Request.Arrival != 3 {
		t.Errorf("recorded arrival = %+v, want 3", rec.Request)
	}
}

func TestEngineFutureArrivalScheduled(t *testing.T) {
	e := newTestEngine(t, 10)
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 5, Duration: 2, Payment: 5})
	if !res.Admitted {
		t.Fatalf("future arrival not admitted: %+v", res)
	}
	rec, _ := e.Placement(res.ID)
	if rec.State != StateScheduled {
		t.Errorf("state before window = %q, want scheduled", rec.State)
	}
	for e.Slot() < 5 {
		e.Tick()
	}
	rec, _ = e.Placement(res.ID)
	if rec.State != StateActive {
		t.Errorf("state inside window = %q, want active", rec.State)
	}
	for e.Slot() < 7 {
		e.Tick()
	}
	rec, _ = e.Placement(res.ID)
	if rec.State != StateExpired {
		t.Errorf("state at slot 7 = %q, want expired", rec.State)
	}
}

// TestEngineManualTickDeterminism drives concurrent submitters against a
// manually ticked engine under -race: every decision is serialized, the
// ledger never overcommits, and accounting stays consistent.
func TestEngineManualTickDeterminism(t *testing.T) {
	e := newTestEngine(t, 40, func(c *Config) { c.QueueSize = 1024 })
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	var revenue float64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := e.Submit(context.Background(),
					AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1 + i%5, Payment: 3})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if res.Admitted {
					mu.Lock()
					admitted++
					revenue += 3
					mu.Unlock()
				}
			}
		}()
	}
	// Tick concurrently with the submitters.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			e.Tick()
		}
	}()
	wg.Wait()
	<-done
	s := e.Stats()
	if int(s.Admitted) != admitted {
		t.Errorf("engine admitted %d, callers saw %d", s.Admitted, admitted)
	}
	if s.Revenue != revenue {
		t.Errorf("engine revenue %v, callers saw %v", s.Revenue, revenue)
	}
	if got := int(s.Admitted + s.RejectedTotal()); got != workers*perWorker {
		t.Errorf("decisions = %d, want %d", got, workers*perWorker)
	}
	// No cell may exceed capacity (enforced scheduler + Reserve).
	for _, cl := range e.Cloudlets() {
		for i, free := range cl.Residual {
			if free < 0 {
				t.Errorf("cloudlet %d slot %d overcommitted: residual %d", cl.ID, cl.FromSlot+i, free)
			}
		}
	}
	// Drain the horizon: every admitted placement must expire and return
	// its capacity.
	for e.Slot() <= 45 {
		e.Tick()
	}
	s = e.Stats()
	if s.Expired != s.Admitted || s.ActivePlacements != 0 {
		t.Errorf("after horizon: expired %d of %d admitted, %d active",
			s.Expired, s.Admitted, s.ActivePlacements)
	}
}

func TestEngineRealTimeClock(t *testing.T) {
	e := newTestEngine(t, 1000, func(c *Config) { c.SlotDuration = 2 * time.Millisecond })
	deadline := time.Now().Add(2 * time.Second)
	for e.Slot() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("clock did not advance past slot %d", e.Slot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineShutdown(t *testing.T) {
	e := newTestEngine(t, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := e.Shutdown(ctx); err != nil { // idempotent
		t.Fatalf("second Shutdown: %v", err)
	}
	if !e.Closed() {
		t.Error("Closed() = false after Shutdown")
	}
	if _, err := e.Submit(context.Background(), AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after shutdown: err = %v, want ErrClosed", err)
	}
	if got := e.Stats().Rejections[ReasonClosed]; got != 1 {
		t.Errorf("closed rejections = %d, want 1", got)
	}
}

// TestEngineShutdownDrains verifies every submission accepted before
// Shutdown gets a real decision.
func TestEngineShutdownDrains(t *testing.T) {
	e := newTestEngine(t, 10, func(c *Config) { c.QueueSize = 512 })
	const n = 200
	var wg sync.WaitGroup
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit(context.Background(),
				AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 1})
			results <- err
		}()
	}
	// Shut down while submissions are in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	close(results)
	decided, refused := 0, 0
	for err := range results {
		switch {
		case err == nil:
			decided++
		case errors.Is(err, ErrClosed):
			refused++
		default:
			t.Errorf("unexpected submit error: %v", err)
		}
	}
	if decided+refused != n {
		t.Errorf("decided %d + refused %d != %d", decided, refused, n)
	}
	s := e.Stats()
	if int(s.Admitted+s.RejectedTotal()) != n {
		t.Errorf("engine decided %d, want %d accounted", s.Admitted+s.RejectedTotal(), n)
	}
}

func TestEngineQueueFullBackpressure(t *testing.T) {
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, 10, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 10, QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	}()
	// With a queue of 1, flooding concurrently must produce at least one
	// ErrQueueFull and no other failure mode.
	var wg sync.WaitGroup
	var full, ok int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Submit(context.Background(),
				AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 1})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrQueueFull):
				full++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Error("no submission succeeded")
	}
	if got := e.Stats().Rejections[ReasonQueueFull]; got != uint64(full) {
		t.Errorf("queue-full counter = %d, callers saw %d", got, full)
	}
}

func TestEngineOverbookRollback(t *testing.T) {
	// An unenforced (raw) scheduler will overcommit; without the
	// violation licence the engine must refuse and roll back cleanly.
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, 10) // raw variant
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	}()
	// Escalating payments defeat the dual prices, so the raw variant keeps
	// admitting until the 2×10-unit network physically cannot hold more.
	overbooked := false
	pay := 1000.0
	for i := 0; i < 50 && !overbooked; i++ {
		res, err := e.Submit(context.Background(),
			AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 10, Payment: pay})
		if err != nil {
			t.Fatal(err)
		}
		pay *= 3
		if res.Reason == ReasonOverbooked {
			overbooked = true
		}
	}
	if !overbooked {
		t.Fatal("raw scheduler never overbooked a 2×10-unit network")
	}
	for _, cl := range e.Cloudlets() {
		for i, free := range cl.Residual {
			if free < 0 {
				t.Errorf("rollback failed: cloudlet %d slot %d residual %d", cl.ID, cl.FromSlot+i, free)
			}
		}
	}
}

func TestEngineAllowViolations(t *testing.T) {
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, 10) // raw variant
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 10, AllowViolations: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	}()
	sawNegative := false
	pay := 1000.0
	for i := 0; i < 50; i++ {
		if _, err := e.Submit(context.Background(),
			AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 10, Payment: pay}); err != nil {
			t.Fatal(err)
		}
		pay *= 3
	}
	for _, cl := range e.Cloudlets() {
		for _, free := range cl.Residual {
			if free < 0 {
				sawNegative = true
			}
		}
	}
	if !sawNegative {
		t.Error("violation licence never produced an overcommitted cell")
	}
	if got := e.Stats().Rejections[ReasonOverbooked]; got != 0 {
		t.Errorf("overbooked rejections = %d, want 0 with violations allowed", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{Network: n, Horizon: 10},                                  // nil scheduler
		{Scheduler: sched, Horizon: 10},                            // nil network
		{Network: n, Scheduler: sched},                             // horizon 0
		{Network: n, Scheduler: sched, Horizon: 10, QueueSize: -1}, // bad queue
		{Network: &core.Network{}, Scheduler: sched, Horizon: 10},  // invalid network
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestEngineSubmitContextCancel(t *testing.T) {
	e := newTestEngine(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The worker may decide before the cancellation is observed, so both
	// a decision and context.Canceled are acceptable; anything else is not.
	_, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 1})
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
	// The decision still happened and is accounted for.
	deadline := time.Now().Add(time.Second)
	for {
		s := e.Stats()
		if s.Admitted+s.RejectedTotal() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned submission never decided")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineCanceledJobSkipped submits with an already-canceled context:
// the serial worker must drop the job without touching the scheduler —
// deciding would mutate dual prices for a caller that abandoned the wait —
// and account for it under the "canceled" rejection reason.
func TestEngineCanceledJobSkipped(t *testing.T) {
	e := newTestEngine(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		s := e.Stats()
		if s.Rejections[ReasonCanceled] == 1 {
			if s.Admitted != 0 {
				t.Fatalf("canceled job reached the scheduler: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled rejection never counted: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// A live context still gets a decision afterwards: the worker loop
	// survives the skip.
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 5})
	if !res.Admitted {
		t.Fatalf("follow-up submission not admitted: %+v", res)
	}
}

// withSharedScheduler swaps the default on-site scheduler for the shared
// pd scheduler with the given pool size.
func withSharedScheduler(t *testing.T, poolSize int) func(*Config) {
	return func(cfg *Config) {
		sched, err := shared.NewScheduler(cfg.Network, cfg.Horizon, shared.WithPoolSize(poolSize))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler = sched
	}
}

func TestEngineSchemeGate(t *testing.T) {
	e := newTestEngine(t, 20)
	// An empty pin and a pin matching the scheduler's scheme both admit.
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10})
	if !res.Admitted {
		t.Fatalf("unpinned request not admitted: %+v", res)
	}
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10, Scheme: "onsite"})
	if !res.Admitted {
		t.Fatalf("matching pin not admitted: %+v", res)
	}
	// Pinning a scheme the scheduler does not implement rejects without
	// touching the scheduler.
	for _, pin := range []string{"offsite", "shared"} {
		res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10, Scheme: pin})
		if res.Admitted || res.Reason != ReasonSchemeUnavailable {
			t.Errorf("pin %q: %+v, want scheme-unavailable", pin, res)
		}
	}
	// An unparsable pin is a malformed request, not a capacity decision.
	res = submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10, Scheme: "raid1"})
	if res.Admitted || res.Reason != ReasonInvalid {
		t.Errorf("bogus pin: %+v, want invalid", res)
	}
	s := e.Stats()
	if got := s.AdmittedByScheme["on-site"]; got != 2 {
		t.Errorf("admitted_by_scheme[on-site] = %d, want 2", got)
	}
}

// TestEnginePooledLifecycle drives shared-backup placements through the
// full admit -> expire cycle and checks the pooled capacity drains: after
// every member of a backup group expires, the cloudlets are back to full
// capacity and a fresh wave of requests admits again.
func TestEnginePooledLifecycle(t *testing.T) {
	e := newTestEngine(t, 30, withSharedScheduler(t, 2))

	admitOne := func() AdmissionResult {
		res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10})
		if !res.Admitted {
			t.Fatalf("shared request not admitted: %+v", res)
		}
		if res.Placement.Scheme != core.Shared || res.Placement.Backup == nil {
			t.Fatalf("placement is not a shared-backup placement: %+v", res.Placement)
		}
		return res
	}
	first, second := admitOne(), admitOne()
	if first.Placement.Backup.PoolSize != 2 {
		t.Errorf("pool size = %d, want 2", first.Placement.Backup.PoolSize)
	}
	// Two members, pool size two, same slot: the scheduler may pool them
	// into one group or open a second; either way each carries a group id.
	if first.Placement.Backup.Group <= 0 || second.Placement.Backup.Group <= 0 {
		t.Errorf("backup groups = %d, %d, want positive ids",
			first.Placement.Backup.Group, second.Placement.Backup.Group)
	}

	// Advance past expiry: both placements release their primaries and
	// leave their groups, so the pooled instances are freed too.
	for e.Slot() < 5 {
		e.Tick()
	}
	s := e.Stats()
	if s.Expired != 2 || s.ActivePlacements != 0 {
		t.Fatalf("stats expired/active = %d/%d, want 2/0", s.Expired, s.ActivePlacements)
	}
	for _, c := range e.Cloudlets() {
		for off, free := range c.Residual {
			if free != c.Capacity {
				t.Errorf("cloudlet %d slot offset %d: residual %d, want full capacity %d",
					c.ID, off, free, c.Capacity)
			}
		}
	}

	// The freed capacity is immediately reusable by a new group.
	third := admitOne()
	if third.Placement.Backup.PoolSize != 2 {
		t.Errorf("post-drain pool size = %d, want 2", third.Placement.Backup.PoolSize)
	}
	if got := e.Stats().AdmittedByScheme["shared"]; got != 3 {
		t.Errorf("admitted_by_scheme[shared] = %d, want 3", got)
	}
}
