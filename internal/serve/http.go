package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"revnf/internal/core"
	"revnf/internal/trace"
)

// HTTP wire shapes. Kept separate from the engine types so the JSON field
// names stay stable independent of Go identifiers.

type assignmentDTO struct {
	Cloudlet  int `json:"cloudlet"`
	Instances int `json:"instances"`
}

type placementDTO struct {
	Scheme       string          `json:"scheme"`
	Assignments  []assignmentDTO `json:"assignments"`
	Availability float64         `json:"availability"`
	// BackupGroup is present only for shared-scheme placements: the pooled
	// backup instance this placement joined.
	BackupGroup *backupGroupDTO `json:"backup_group,omitempty"`
}

// backupGroupDTO identifies a shared placement's pooled backup: the group
// id, the cloudlet hosting the pooled instance, and the pool capacity k
// the availability was validated against.
type backupGroupDTO struct {
	Group    int `json:"group"`
	Cloudlet int `json:"cloudlet"`
	PoolSize int `json:"pool_size"`
}

type decisionDTO struct {
	ID        int           `json:"id"`
	Admitted  bool          `json:"admitted"`
	Reason    string        `json:"reason,omitempty"`
	Slot      int           `json:"slot"`
	Placement *placementDTO `json:"placement,omitempty"`
}

type placementRecordDTO struct {
	ID          int     `json:"id"`
	State       string  `json:"state"`
	VNF         int     `json:"vnf"`
	Reliability float64 `json:"reliability"`
	Arrival     int     `json:"arrival"`
	Duration    int     `json:"duration"`
	Payment     float64 `json:"payment"`
	DecidedSlot int     `json:"decided_slot"`
	// WindowBase is the ledger window base at read time (1 in fixed
	// mode); ArrivalOffset is Arrival - WindowBase, the window-relative
	// position of the placement's first slot (negative once the base has
	// advanced past it).
	WindowBase    int           `json:"window_base"`
	ArrivalOffset int           `json:"arrival_offset"`
	Placement     *placementDTO `json:"placement"`
}

// placementHealthDTO reports the failure runtime's SLO account for one
// admitted placement.
type placementHealthDTO struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Scheme is the redundancy scheme the placement runs; BackupGroup is
	// present for shared placements, tying the health account to the pooled
	// backup whose failures it shares with its group peers.
	Scheme      string          `json:"scheme,omitempty"`
	BackupGroup *backupGroupDTO `json:"backup_group,omitempty"`
	// Required is the request's reliability requirement R; Provisioned the
	// availability promised at admission; Observed the delivered fraction
	// of scored slots with live service.
	Required    float64 `json:"required"`
	Provisioned float64 `json:"provisioned"`
	Observed    float64 `json:"observed"`
	// WindowSlots is the request window; ObservedSlots how many of them
	// the failure runtime has scored so far.
	WindowSlots   int `json:"window_slots"`
	ObservedSlots int `json:"observed_slots"`
	UpSlots       int `json:"up_slots"`
	DownSlots     int `json:"down_slots"`
	// Repairs counts successful re-placements; RepairLatencySlots the
	// summed slots their failure episodes stayed open.
	Repairs            int `json:"repairs"`
	RepairLatencySlots int `json:"repair_latency_slots"`
	// Degraded marks an exhausted repair budget or a window that ended
	// below Required; SLOMet whether delivery currently meets Required.
	Degraded bool `json:"degraded"`
	SLOMet   bool `json:"slo_met"`
	// WindowBase is the ledger window base at read time (1 in fixed
	// mode), anchoring the absolute slot numbers above.
	WindowBase int `json:"window_base"`
}

// errorDTO is the v1 error envelope, used by every endpoint: code repeats
// the HTTP status, reason is a machine-readable code from the trace.Reason
// vocabulary (the same enum decision traces and the rejection metrics
// use), and detail is an optional human-readable elaboration.
type errorDTO struct {
	Code   int    `json:"code"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
}

// writeError sends the v1 error envelope.
func writeError(w http.ResponseWriter, status int, reason, detail string) {
	writeJSON(w, status, errorDTO{Code: status, Reason: reason, Detail: detail})
}

// NewHandler exposes the engine over HTTP/JSON (API version v1):
//
//	POST /v1/requests            admit or reject one request (503 on backpressure)
//	GET  /v1/placements/{id}     look up an admitted placement
//	GET  /v1/placements/{id}/health SLO account under the failure runtime (chaos on)
//	GET  /v1/decisions/{id}/trace decision trace for a request (tracing on)
//	GET  /v1/cloudlets           residual capacity per cloudlet per slot
//	GET  /healthz                liveness (503 once shutdown begins)
//	GET  /metrics                Prometheus text exposition
//
// Every error response carries the JSON envelope
// {"code": <http status>, "reason": "<machine code>", "detail": "..."};
// the reason values are the trace.Reason vocabulary.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		var ar AdmissionRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ar); err != nil {
			writeError(w, http.StatusBadRequest, ReasonInvalid, fmt.Sprintf("decode request: %v", err))
			return
		}
		e.ingest.jsonReqs.Add(1)
		res, err := e.Submit(r.Context(), ar)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, ReasonQueueFull, "ingest queue at capacity")
			return
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, ReasonClosed, "engine shutting down")
			return
		case err != nil: // context cancellation: the client went away
			writeError(w, http.StatusServiceUnavailable, ReasonCanceled, err.Error())
			return
		}
		out := decisionDTO{ID: res.ID, Admitted: res.Admitted, Reason: res.Reason, Slot: res.Slot}
		if res.Admitted {
			arrival := ar.Arrival
			if arrival == 0 {
				arrival = res.Slot
			}
			req := core.Request{ID: res.ID, VNF: ar.VNF, Reliability: ar.Reliability,
				Arrival: arrival, Duration: ar.Duration, Payment: ar.Payment}
			out.Placement = toPlacementDTO(e.Network(), req, res.Placement)
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /v1/placements/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, ReasonInvalid, "placement id must be an integer")
			return
		}
		rec, ok := e.Placement(id)
		if !ok {
			writeError(w, http.StatusNotFound, string(trace.ReasonNotFound), fmt.Sprintf("no placement %d", id))
			return
		}
		base := e.WindowBase()
		writeJSON(w, http.StatusOK, placementRecordDTO{
			ID:            rec.ID,
			State:         string(rec.State),
			VNF:           rec.Request.VNF,
			Reliability:   rec.Request.Reliability,
			Arrival:       rec.Request.Arrival,
			Duration:      rec.Request.Duration,
			Payment:       rec.Request.Payment,
			DecidedSlot:   rec.DecidedSlot,
			WindowBase:    base,
			ArrivalOffset: rec.Request.Arrival - base,
			Placement:     toPlacementDTO(e.Network(), rec.Request, rec.Placement),
		})
	})

	mux.HandleFunc("GET /v1/placements/{id}/health", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, ReasonInvalid, "placement id must be an integer")
			return
		}
		tracker := e.SLO()
		if tracker == nil {
			writeError(w, http.StatusNotFound, string(trace.ReasonNotFound),
				"failure runtime is disabled (start revnfd with -chaos)")
			return
		}
		entry, ok := tracker.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, string(trace.ReasonNotFound), fmt.Sprintf("no SLO account for placement %d", id))
			return
		}
		state, scheme := "", ""
		var group *backupGroupDTO
		if rec, ok := e.Placement(id); ok {
			state = string(rec.State)
			scheme = rec.Placement.Scheme.String()
			group = toBackupGroupDTO(rec.Placement)
		}
		writeJSON(w, http.StatusOK, placementHealthDTO{
			ID:                 entry.ID,
			State:              state,
			Scheme:             scheme,
			BackupGroup:        group,
			Required:           entry.Required,
			Provisioned:        entry.Provisioned,
			Observed:           entry.Observed(),
			WindowSlots:        entry.WindowSlots,
			ObservedSlots:      entry.ObservedSlots,
			UpSlots:            entry.UpSlots,
			DownSlots:          entry.DownSlots,
			Repairs:            entry.Repairs,
			RepairLatencySlots: entry.RepairLatencySlots,
			Degraded:           entry.Degraded,
			SLOMet:             entry.Met(),
			WindowBase:         e.WindowBase(),
		})
	})

	mux.HandleFunc("GET /v1/decisions/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, ReasonInvalid, "decision id must be an integer")
			return
		}
		store := e.Traces()
		if store == nil {
			writeError(w, http.StatusNotFound, string(trace.ReasonNotFound),
				"decision tracing is disabled (start revnfd with -trace)")
			return
		}
		dt, ok := store.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, string(trace.ReasonNotFound),
				fmt.Sprintf("no trace for decision %d (not sampled, or evicted from the ring)", id))
			return
		}
		writeJSON(w, http.StatusOK, dt)
	})

	mux.HandleFunc("GET /v1/cloudlets", func(w http.ResponseWriter, r *http.Request) {
		mode := "fixed"
		if e.Rolling() {
			mode = "rolling"
		}
		writeJSON(w, http.StatusOK, struct {
			Slot int `json:"slot"`
			// Horizon is the fixed T or the rolling window width; the live
			// window is [window_base, window_base+horizon-1].
			Horizon     int    `json:"horizon"`
			HorizonMode string `json:"horizon_mode"`
			WindowBase  int    `json:"window_base"`
			WindowSize  int    `json:"window_size"`
			// AdmittedByScheme counts admissions per redundancy scheme over
			// the engine's lifetime, keyed by scheme display name. Absent
			// until the first admission.
			AdmittedByScheme map[string]uint64 `json:"admitted_by_scheme,omitempty"`
			Cloudlets        []CloudletStatus  `json:"cloudlets"`
		}{Slot: e.Slot(), Horizon: e.Horizon(), HorizonMode: mode,
			WindowBase: e.WindowBase(), WindowSize: e.Horizon(),
			AdmittedByScheme: e.Stats().AdmittedByScheme, Cloudlets: e.Cloudlets()})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Closed() {
			writeError(w, http.StatusServiceUnavailable, ReasonClosed, "shutting down")
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.WriteMetrics(w); err != nil {
			writeError(w, http.StatusInternalServerError, string(trace.ReasonInternal), err.Error())
		}
	})

	return mux
}

func toPlacementDTO(n *core.Network, req core.Request, p core.Placement) *placementDTO {
	dto := &placementDTO{
		Scheme:       p.Scheme.String(),
		Assignments:  make([]assignmentDTO, len(p.Assignments)),
		Availability: p.Availability(n, req),
	}
	for i, a := range p.Assignments {
		dto.Assignments[i] = assignmentDTO{Cloudlet: a.Cloudlet, Instances: a.Instances}
	}
	dto.BackupGroup = toBackupGroupDTO(p)
	return dto
}

// toBackupGroupDTO returns the pooled-backup view of a placement, nil for
// dedicated schemes.
func toBackupGroupDTO(p core.Placement) *backupGroupDTO {
	if p.Backup == nil {
		return nil
	}
	return &backupGroupDTO{Group: p.Backup.Group, Cloudlet: p.Backup.Cloudlet, PoolSize: p.Backup.PoolSize}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// Encoding failures past WriteHeader cannot be reported to the client.
	_ = json.NewEncoder(w).Encode(v)
}
