package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"

	"revnf/internal/onsite"
	"revnf/internal/trace"
	"revnf/internal/wire"
)

// goldenStream is the request stream the cross-protocol golden test
// replays through every ingress: admissions, price-outs, infeasible
// requirements, invalid and horizon-violating windows.
func goldenStream() []AdmissionRequest {
	var reqs []AdmissionRequest
	for i := 0; i < 200; i++ {
		ar := AdmissionRequest{
			VNF:         0,
			Reliability: 0.9,
			Duration:    1 + (i*7)%5,
			Payment:     40 + float64((i*13)%60),
		}
		switch i % 10 {
		case 3:
			ar.Payment = 0.25 // priced out once λ builds
		case 5:
			ar.Reliability = 0.995 // no cloudlet can serve it
		case 7:
			ar.Duration = 99 // beyond the horizon
		case 9:
			ar.Duration = 0 // invalid
		}
		reqs = append(reqs, ar)
	}
	return reqs
}

func ndjsonStreamBody(reqs []AdmissionRequest) []byte {
	var buf []byte
	for i := range reqs {
		wr := wire.Request{VNF: reqs[i].VNF, Arrival: reqs[i].Arrival, Duration: reqs[i].Duration,
			Reliability: reqs[i].Reliability, Payment: reqs[i].Payment}
		buf = wire.AppendNDJSONRequest(buf, &wr)
	}
	return buf
}

func frameStreamBody(t *testing.T, reqs []AdmissionRequest) []byte {
	t.Helper()
	buf := wire.AppendPreamble(nil)
	for i := range reqs {
		wr := wire.Request{VNF: reqs[i].VNF, Arrival: reqs[i].Arrival, Duration: reqs[i].Duration,
			Reliability: reqs[i].Reliability, Payment: reqs[i].Payment}
		var err error
		buf, err = wire.AppendRequestFrame(buf, &wr)
		if err != nil {
			t.Fatalf("encode frame %d: %v", i, err)
		}
	}
	return buf
}

func readDecisions(t *testing.T, conn net.Conn, want int, frame bool) []wire.Decision {
	t.Helper()
	out := make([]wire.Decision, 0, want)
	if frame {
		fr := wire.NewFrameReader(bufio.NewReader(conn))
		for len(out) < want {
			typ, payload, err := fr.Next()
			if err != nil {
				t.Fatalf("after %d decisions: %v", len(out), err)
			}
			if typ != wire.FrameDecision {
				code, reason, detail, _ := wire.DecodeError(payload)
				t.Fatalf("after %d decisions: frame type %#x (error %d/%v: %s)", len(out), typ, code, reason, detail)
			}
			var d wire.Decision
			if err := wire.DecodeDecision(payload, &d); err != nil {
				t.Fatal(err)
			}
			out = append(out, d)
		}
	} else {
		sc := bufio.NewScanner(conn)
		for len(out) < want && sc.Scan() {
			var d wire.Decision
			if err := wire.DecodeNDJSONDecision(sc.Bytes(), &d); err != nil {
				t.Fatalf("decision line %q: %v", sc.Bytes(), err)
			}
			out = append(out, d)
		}
		if len(out) < want {
			t.Fatalf("stream ended after %d/%d decisions: %v", len(out), want, sc.Err())
		}
	}
	return out
}

// net.Pipe conns do not implement CloseWrite; wrap with a half-closable
// TCP pair when the test needs EOF semantics.
func tcpPair(t *testing.T) (client *net.TCPConn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		ch <- accepted{c, err}
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { c.Close(); a.c.Close() })
	return c.(*net.TCPConn), a.c
}

// runStreamTCP is runStream over a real TCP pair (half-close support).
func runStreamTCP(t *testing.T, e *Engine, body []byte, want int, frame bool) []wire.Decision {
	t.Helper()
	client, server := tcpPair(t)
	s := NewStreamServer(e)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.ServeConn(server)
	}()
	t.Cleanup(func() { <-done })
	go func() {
		client.Write(body)
		client.CloseWrite()
	}()
	return readDecisions(t, client, want, frame)
}

func TestStreamNDJSONBasic(t *testing.T) {
	e := newTestEngine(t, 20)
	reqs := []AdmissionRequest{
		{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10},
		{VNF: 0, Reliability: 0.995, Duration: 3, Payment: 10},
		{VNF: 0, Reliability: 0.9, Duration: 99, Payment: 10},
	}
	ds := runStreamTCP(t, e, ndjsonStreamBody(reqs), len(reqs), false)
	if !ds[0].Admitted || ds[0].ID != 1 || ds[0].Slot != 1 {
		t.Fatalf("decision 0 = %+v, want admitted id 1 slot 1", ds[0])
	}
	if ds[1].Admitted || ds[1].Reason.Reason() != ReasonDeclined {
		t.Fatalf("decision 1 = %+v, want declined", ds[1])
	}
	if ds[2].Admitted || ds[2].Reason.Reason() != ReasonHorizon {
		t.Fatalf("decision 2 = %+v, want horizon", ds[2])
	}
}

func TestStreamFrameBasic(t *testing.T) {
	e := newTestEngine(t, 20)
	reqs := []AdmissionRequest{
		{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10},
		{VNF: 7, Reliability: 0.9, Duration: 3, Payment: 10},
	}
	ds := runStreamTCP(t, e, frameStreamBody(t, reqs), len(reqs), true)
	if !ds[0].Admitted || ds[0].ID != 1 {
		t.Fatalf("decision 0 = %+v, want admitted id 1", ds[0])
	}
	if ds[1].Admitted || ds[1].Reason.Reason() != ReasonInvalid {
		t.Fatalf("decision 1 = %+v, want invalid", ds[1])
	}
}

// TestStreamCrossProtocolGolden is the tentpole's correctness anchor: the
// same request stream ingested through individual HTTP posts, an NDJSON
// stream, and a binary-frame stream must produce bit-identical decisions
// and decision traces on three fresh engines.
func TestStreamCrossProtocolGolden(t *testing.T) {
	reqs := goldenStream()

	type ingested struct {
		name      string
		decisions []wire.Decision
		store     *trace.Store
		stats     Stats
	}
	var runs []ingested

	// HTTP: one post per request against a fresh traced engine.
	{
		e, store := goldenEngine(t, 24, false)
		srv := httptest.NewServer(NewHandler(e))
		t.Cleanup(srv.Close)
		var ds []wire.Decision
		for i := range reqs {
			body, _ := json.Marshal(reqs[i])
			resp, dec := postRequest(t, srv.URL, string(body))
			if resp.StatusCode != 200 {
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
			ds = append(ds, wire.Decision{
				ID: uint64(dec.ID), Slot: dec.Slot, Admitted: dec.Admitted,
				Reason: wire.CodeForReason(dec.Reason),
			})
		}
		runs = append(runs, ingested{"json", ds, store, e.Stats()})
	}
	// NDJSON and frame streams on their own fresh engines.
	{
		e, store := goldenEngine(t, 24, false)
		ds := runStreamTCP(t, e, ndjsonStreamBody(reqs), len(reqs), false)
		runs = append(runs, ingested{"ndjson", ds, store, e.Stats()})
	}
	{
		e, store := goldenEngine(t, 24, false)
		ds := runStreamTCP(t, e, frameStreamBody(t, reqs), len(reqs), true)
		runs = append(runs, ingested{"frame", ds, store, e.Stats()})
	}

	ref := runs[0]
	for _, run := range runs[1:] {
		for i := range reqs {
			if run.decisions[i] != ref.decisions[i] {
				t.Fatalf("request %d: %s decision %+v != %s decision %+v",
					i, run.name, run.decisions[i], ref.name, ref.decisions[i])
			}
		}
		if run.stats.Admitted != ref.stats.Admitted || run.stats.Revenue != ref.stats.Revenue {
			t.Fatalf("%s stats admitted=%d revenue=%v, %s admitted=%d revenue=%v",
				run.name, run.stats.Admitted, run.stats.Revenue,
				ref.name, ref.stats.Admitted, ref.stats.Revenue)
		}
		for reason, n := range ref.stats.Rejections {
			if got := run.stats.Rejections[reason]; got != n {
				t.Fatalf("rejections[%q]: %s %d, %s %d", reason, run.name, got, ref.name, n)
			}
		}
		// Traces byte-identical under JSON encoding, request by request.
		for i := range reqs {
			id := int(ref.decisions[i].ID)
			if id == 0 {
				continue
			}
			rt, rok := ref.store.Get(id)
			ot, ook := run.store.Get(id)
			if rok != ook {
				t.Fatalf("trace %d: %s ok=%v %s ok=%v", id, ref.name, rok, run.name, ook)
			}
			if !rok { // not every decision is traced (e.g. pre-validation rejects)
				continue
			}
			rj, err := json.Marshal(rt)
			if err != nil {
				t.Fatal(err)
			}
			oj, err := json.Marshal(ot)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rj, oj) {
				t.Fatalf("trace %d diverged\n%s: %s\n%s: %s", id, ref.name, rj, run.name, oj)
			}
		}
	}
}

// TestSubmitBatchMatchesSubmit pins the batch path to the one-at-a-time
// path: the same requests in the same order yield identical results.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reqs := goldenStream()
			single := newGoldenWorkersEngine(t, 24, workers)
			batch := newGoldenWorkersEngine(t, 24, workers)
			out := make([]AdmissionResult, len(reqs))
			if err := batch.SubmitBatch(context.Background(), reqs, out); err != nil {
				t.Fatal(err)
			}
			for i := range reqs {
				want, err := single.Submit(context.Background(), reqs[i])
				if err != nil {
					t.Fatal(err)
				}
				got := out[i]
				if got.ID != want.ID || got.Admitted != want.Admitted ||
					got.Reason != want.Reason || got.Slot != want.Slot {
					t.Fatalf("request %d: batch %+v, single %+v", i, got, want)
				}
			}
			bs, ss := batch.Stats(), single.Stats()
			if bs.Admitted != ss.Admitted || bs.Revenue != ss.Revenue {
				t.Fatalf("batch admitted=%d revenue=%v, single admitted=%d revenue=%v",
					bs.Admitted, bs.Revenue, ss.Admitted, ss.Revenue)
			}
		})
	}
}

// newGoldenWorkersEngine builds an engine with deterministic decisions at
// the given worker count. A single submitter (one batch, or a serial loop
// of Submits) keeps sharded decisions ordered, so results are comparable.
func newGoldenWorkersEngine(t *testing.T, horizon, workers int) *Engine {
	t.Helper()
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: horizon, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownEngine(t, e) })
	return e
}

// TestSubmitBatchQueueFull: a sharded batch beyond the waiting bound is
// rejected per request with queue-full results, not an error, so a
// streaming connection keeps its request/response pairing.
func TestSubmitBatchQueueFull(t *testing.T) {
	e := newTestEngine(t, 20, func(c *Config) {
		c.Workers = 2
		c.QueueSize = 1
	})
	if e.Workers() != 2 {
		t.Skip("scheduler degraded to serial; waiting bound not in play")
	}
	reqs := make([]AdmissionRequest, 8) // 8 > queue 1 + workers 2
	for i := range reqs {
		reqs[i] = AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 1, Payment: 5}
	}
	out := make([]AdmissionResult, len(reqs))
	if err := e.SubmitBatch(context.Background(), reqs, out); err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if res.Admitted || res.Reason != ReasonQueueFull || res.ID != 0 {
			t.Fatalf("result %d = %+v, want queue-full", i, res)
		}
	}
	if got := e.Stats().Rejections[ReasonQueueFull]; got != uint64(len(reqs)) {
		t.Fatalf("queue-full rejections = %d, want %d", got, len(reqs))
	}
}

// TestStreamErrorEnvelopes covers the streaming equivalents of the HTTP
// error envelope: malformed input and engine shutdown must surface as
// structured error records carrying the same code/reason/detail triple.
func TestStreamErrorEnvelopes(t *testing.T) {
	t.Run("ndjson bad line", func(t *testing.T) {
		e := newTestEngine(t, 20)
		client, server := tcpPair(t)
		s := NewStreamServer(e)
		go s.ServeConn(server)
		// One good request, then garbage: the good decision must arrive
		// before the terminal error line.
		io.WriteString(client, `{"vnf":0,"reliability":0.9,"duration":3,"payment":10}`+"\n")
		io.WriteString(client, "this is not json\n")
		client.CloseWrite()
		sc := bufio.NewScanner(client)
		if !sc.Scan() {
			t.Fatal("no decision line")
		}
		var d wire.Decision
		if err := wire.DecodeNDJSONDecision(sc.Bytes(), &d); err != nil || !d.Admitted {
			t.Fatalf("first line %q: err=%v d=%+v", sc.Bytes(), err, d)
		}
		if !sc.Scan() {
			t.Fatal("no error line")
		}
		var env struct {
			Error struct {
				Code   int    `json:"code"`
				Reason string `json:"reason"`
				Detail string `json:"detail"`
			} `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("error line %q: %v", sc.Bytes(), err)
		}
		if env.Error.Code != 400 || env.Error.Reason != ReasonInvalid || env.Error.Detail == "" {
			t.Fatalf("error envelope = %+v, want code 400 reason invalid", env.Error)
		}
		if sc.Scan() {
			t.Fatalf("line after terminal error: %q", sc.Bytes())
		}
	})

	t.Run("frame bad type", func(t *testing.T) {
		e := newTestEngine(t, 20)
		client, server := tcpPair(t)
		s := NewStreamServer(e)
		go s.ServeConn(server)
		buf := wire.AppendPreamble(nil)
		buf = append(buf, 2, 0, 0, 0, 0x7f, 0xaa) // unknown frame type
		client.Write(buf)
		client.CloseWrite()
		fr := wire.NewFrameReader(bufio.NewReader(client))
		typ, payload, err := fr.Next()
		if err != nil || typ != wire.FrameError {
			t.Fatalf("Next = (%#x, _, %v), want FrameError", typ, err)
		}
		code, reason, _, err := wire.DecodeError(payload)
		if err != nil {
			t.Fatal(err)
		}
		if code != 400 || reason != wire.ReasonInvalid {
			t.Fatalf("error = (%d, %v), want (400, invalid)", code, reason)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		e := newTestEngine(t, 20)
		client, server := tcpPair(t)
		s := NewStreamServer(e)
		go s.ServeConn(server)
		io.WriteString(client, "RONG!")
		client.CloseWrite()
		fr := wire.NewFrameReader(bufio.NewReader(client))
		typ, payload, err := fr.Next()
		if err != nil || typ != wire.FrameError {
			t.Fatalf("Next = (%#x, _, %v), want FrameError", typ, err)
		}
		if code, reason, _, _ := wire.DecodeError(payload); code != 400 || reason != wire.ReasonInvalid {
			t.Fatalf("error = (%d, %v), want (400, invalid)", code, reason)
		}
	})

	t.Run("engine closed", func(t *testing.T) {
		e := newTestEngine(t, 20)
		shutdownEngine(t, e)
		client, server := tcpPair(t)
		s := NewStreamServer(e)
		go s.ServeConn(server)
		io.WriteString(client, `{"vnf":0,"reliability":0.9,"duration":3,"payment":10}`+"\n")
		client.CloseWrite()
		sc := bufio.NewScanner(client)
		if !sc.Scan() {
			t.Fatal("no error line")
		}
		var env struct {
			Error struct {
				Code   int    `json:"code"`
				Reason string `json:"reason"`
			} `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &env); err != nil {
			t.Fatalf("error line %q: %v", sc.Bytes(), err)
		}
		if env.Error.Code != 503 || env.Error.Reason != ReasonClosed {
			t.Fatalf("error envelope = %+v, want code 503 reason closed", env.Error)
		}
	})
}

// TestStreamConcurrentConnections soaks the listener path: several
// connections stream concurrently against a sharded engine; every
// connection must get one in-order decision per request.
func TestStreamConcurrentConnections(t *testing.T) {
	e := newTestEngine(t, 20, func(c *Config) {
		c.Workers = 4
		c.QueueSize = 4096
	})
	s := NewStreamServer(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		s.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	const conns, perConn = 4, 200
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		frame := c%2 == 0
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			var body []byte
			if frame {
				body = wire.AppendPreamble(nil)
			}
			for i := 0; i < perConn; i++ {
				wr := wire.Request{VNF: 0, Reliability: 0.9, Duration: 1 + i%5, Payment: 5 + float64(i%40)}
				if frame {
					body, err = wire.AppendRequestFrame(body, &wr)
					if err != nil {
						errs <- err
						return
					}
				} else {
					body = wire.AppendNDJSONRequest(body, &wr)
				}
			}
			if _, err := conn.Write(body); err != nil {
				errs <- err
				return
			}
			conn.(*net.TCPConn).CloseWrite()
			seen := make(map[uint64]bool, perConn)
			var ds []wire.Decision
			if frame {
				fr := wire.NewFrameReader(bufio.NewReader(conn))
				for len(ds) < perConn {
					typ, payload, err := fr.Next()
					if err != nil || typ != wire.FrameDecision {
						errs <- fmt.Errorf("conn frame read after %d: typ=%#x err=%v", len(ds), typ, err)
						return
					}
					var d wire.Decision
					if err := wire.DecodeDecision(payload, &d); err != nil {
						errs <- err
						return
					}
					ds = append(ds, d)
				}
			} else {
				sc := bufio.NewScanner(conn)
				for len(ds) < perConn && sc.Scan() {
					var d wire.Decision
					if err := wire.DecodeNDJSONDecision(sc.Bytes(), &d); err != nil {
						errs <- fmt.Errorf("bad decision line %q: %v", sc.Bytes(), err)
						return
					}
					ds = append(ds, d)
				}
				if len(ds) < perConn {
					errs <- fmt.Errorf("stream ended after %d/%d: %v", len(ds), perConn, sc.Err())
					return
				}
			}
			for _, d := range ds {
				if d.ID == 0 || seen[d.ID] {
					errs <- fmt.Errorf("duplicate or zero decision id %d", d.ID)
					return
				}
				seen[d.ID] = true
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if total := st.Admitted + st.RejectedTotal(); total != conns*perConn {
		t.Fatalf("decided %d, want %d", total, conns*perConn)
	}
	if got := e.ingest.frameReqs.Load() + e.ingest.ndjsonReqs.Load(); got != conns*perConn {
		t.Fatalf("ingest counters = %d, want %d", got, conns*perConn)
	}
}
