package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/onsite"
	"revnf/internal/trace"
)

// goldenEngine builds a serial engine with tracing wired through both the
// engine and the scheduler, in fixed or rolling mode, over a fresh copy
// of the two-cloudlet test network.
func goldenEngine(t *testing.T, horizon int, rolling bool) (*Engine, *trace.Store) {
	t.Helper()
	n := testNetwork()
	store := trace.NewStore(4096)
	sched, err := onsite.NewScheduler(n, horizon,
		onsite.WithCapacityEnforcement(), onsite.WithRecorder(store))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: horizon,
		Rolling: rolling, Traces: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownEngine(t, e) })
	return e, store
}

// TestRollingFixedGoldenEquivalence is the tentpole's correctness anchor:
// for any request stream whose windows fit inside the live window, the
// rolling engine must produce bit-identical decisions, payments, and
// decision traces to the fixed-horizon engine. The stream mixes admits,
// price-outs, capacity pressure, and horizon rejections; both engines see
// it verbatim on the same manual clock.
func TestRollingFixedGoldenEquivalence(t *testing.T) {
	const (
		T           = 24
		submitSlots = 19 // + max duration 5 stays inside [1, T]
		perSlot     = 5
	)
	fixed, fixedStore := goldenEngine(t, T, false)
	rolling, rollingStore := goldenEngine(t, T, true)

	// Deterministic stream: durations 1..5, reliability alternating, and a
	// low-payment request each slot that the dual prices should squeeze out
	// once congestion builds.
	var ids []int
	for slot := 1; slot <= submitSlots; slot++ {
		for i := 0; i < perSlot; i++ {
			ar := AdmissionRequest{
				VNF:         0,
				Reliability: 0.9,
				Duration:    1 + (slot*3+i*7)%5,
				Payment:     40 + float64((slot*11+i*5)%60),
			}
			if i == perSlot-1 {
				ar.Payment = 0.5 // priced out once λ > 0
			}
			if i%2 == 1 {
				ar.Reliability = 0.95
			}
			fr := submit(t, fixed, ar)
			rr := submit(t, rolling, ar)
			if fr.ID != rr.ID {
				t.Fatalf("slot %d req %d: id diverged fixed=%d rolling=%d", slot, i, fr.ID, rr.ID)
			}
			if fr.Admitted != rr.Admitted || fr.Reason != rr.Reason || fr.Slot != rr.Slot {
				t.Fatalf("slot %d req %d: decision diverged\nfixed:   %+v\nrolling: %+v", slot, i, fr, rr)
			}
			if fmt.Sprintf("%+v", fr.Placement) != fmt.Sprintf("%+v", rr.Placement) {
				t.Fatalf("slot %d req %d: placement diverged\nfixed:   %+v\nrolling: %+v",
					slot, i, fr.Placement, rr.Placement)
			}
			ids = append(ids, fr.ID)
		}
		fixed.Tick()
		rolling.Tick()
	}
	// The rolling base advanced as early placements drained (that is the
	// point of the mode) while every decision above still matched the fixed
	// engine bit for bit: advancing never touches live-slot state.
	if base := rolling.WindowBase(); base <= 1 || base > rolling.Slot() {
		t.Fatalf("rolling base %d after %d slots, want in (1, %d]", base, rolling.Slot(), rolling.Slot())
	}

	// Payments: the summed objective must match bit-for-bit.
	fs, rs := fixed.Stats(), rolling.Stats()
	if fs.Admitted != rs.Admitted || fs.Revenue != rs.Revenue || fs.Expired != rs.Expired {
		t.Fatalf("stats diverged: fixed admitted=%d revenue=%v expired=%d, rolling admitted=%d revenue=%v expired=%d",
			fs.Admitted, fs.Revenue, fs.Expired, rs.Admitted, rs.Revenue, rs.Expired)
	}
	for reason, count := range fs.Rejections {
		if rs.Rejections[reason] != count {
			t.Fatalf("rejections[%q]: fixed %d rolling %d", reason, count, rs.Rejections[reason])
		}
	}

	// Traces: every decision's full trace — request metadata, each Propose
	// attempt with per-cloudlet candidates and dual costs, and the final
	// outcome — must be byte-identical under JSON encoding.
	for _, id := range ids {
		ft, fok := fixedStore.Get(id)
		rt, rok := rollingStore.Get(id)
		if !fok || !rok {
			t.Fatalf("trace %d: fixed ok=%v rolling ok=%v", id, fok, rok)
		}
		fj, err := json.Marshal(ft)
		if err != nil {
			t.Fatal(err)
		}
		rj, err := json.Marshal(rt)
		if err != nil {
			t.Fatal(err)
		}
		if string(fj) != string(rj) {
			t.Fatalf("trace %d diverged\nfixed:   %s\nrolling: %s", id, fj, rj)
		}
	}

	// Same λ surface over the still-live slots, bit for bit (retired slots
	// read the zero sentinel on the rolling side and are not compared).
	fl := fixed.sched.(core.LambdaReader)
	rl := rolling.sched.(core.LambdaReader)
	for j := 0; j < 2; j++ {
		for s := rolling.WindowBase(); s <= T; s++ {
			if fv, rv := fl.Lambda(j, s), rl.Lambda(j, s); fv != rv {
				t.Fatalf("lambda(%d,%d): fixed %v rolling %v", j, s, fv, rv)
			}
		}
	}
}

// TestRollingOutlivesFixedHorizon is the divergence counterpart of the
// golden test: once the clock passes slot T - d the fixed engine rejects
// every new window for the horizon while the rolling engine keeps
// admitting forever.
func TestRollingOutlivesFixedHorizon(t *testing.T) {
	const T = 10
	fixed, _ := goldenEngine(t, T, false)
	rolling, _ := goldenEngine(t, T, true)
	for fixed.Slot() < T {
		fixed.Tick()
		rolling.Tick()
	}
	ar := AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 50}
	if fr := submit(t, fixed, ar); fr.Admitted || fr.Reason != ReasonHorizon {
		t.Fatalf("fixed engine at slot %d admitted a window past T: %+v", fixed.Slot(), fr)
	}
	rr := submit(t, rolling, ar)
	if !rr.Admitted {
		t.Fatalf("rolling engine at slot %d rejected an in-window request: %+v", rolling.Slot(), rr)
	}
	if base := rolling.WindowBase(); base != T {
		t.Fatalf("rolling base = %d at slot %d, want %d", base, rolling.Slot(), T)
	}
}

// TestSoakRollingHorizon is the continuous-operation acceptance soak: a
// rolling engine with chaos enabled runs more than five window lengths,
// proving slot recycling, λ aging, placement expiry, and repair all keep
// working past the old horizon. After every advance the freshly exposed
// far-edge slots must be at full capacity — recycled rows were drained
// before reuse — and at the end every account finalizes and the live
// window drains completely.
func TestSoakRollingHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("long-window rolling soak; skipped with -short")
	}
	const (
		window      = 40
		submitSlots = 220 // 5.5 window lengths
		perSlot     = 6
	)
	n := soakNetwork()
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  4,
		InstanceMTTR:  2,
		CloudletRates: soakRates(n),
		Seed:          2027,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore(8192)
	sched := newOnsiteScheduler(t, n, window)
	e, err := New(Config{
		Network: n, Scheduler: sched, Horizon: window, Rolling: true,
		Chaos: inj, RepairAttempts: 3, Traces: store, QueueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	var admitted []int
	prevBase := e.WindowBase()
	for slot := 1; slot <= submitSlots; slot = e.Tick().Slot {
		// Recycling invariant: slots that entered the window on this tick
		// were recycled from drained rows, so before this slot's traffic
		// they are at full capacity.
		base := e.WindowBase()
		if base < prevBase {
			t.Fatalf("slot %d: window base went backward %d -> %d", slot, prevBase, base)
		}
		if base > slot {
			t.Fatalf("slot %d: window base %d ran ahead of the clock", slot, base)
		}
		for fresh := prevBase + window; fresh <= base+window-1; fresh++ {
			for j, cl := range n.Cloudlets {
				if r := e.ledger.Residual(j, fresh); r != cl.Capacity {
					t.Fatalf("slot %d: recycled slot %d cloudlet %d residual %d, want full %d",
						slot, fresh, j, r, cl.Capacity)
				}
			}
		}
		prevBase = base
		for i := 0; i < perSlot; i++ {
			res := submit(t, e, AdmissionRequest{
				VNF:         0,
				Reliability: 0.9,
				Duration:    1 + (slot+i)%5,
				Payment:     100,
			})
			if res.Admitted {
				admitted = append(admitted, res.ID)
			}
		}
		// Live-repair invariant, exactly as in the fixed soak.
		for j, cl := range n.Cloudlets {
			if r := e.ledger.Residual(j, slot); r < 0 || r > cl.Capacity {
				t.Fatalf("slot %d cloudlet %d residual %d out of [0,%d]", slot, j, r, cl.Capacity)
			}
		}
	}
	// Drain: no more traffic; every open window ends within `window` slots.
	for i := 0; i < window+5; i++ {
		e.Tick()
	}

	if len(admitted) < 800 {
		t.Fatalf("admitted %d placements, want ≥ 800 for a meaningful soak", len(admitted))
	}
	if base := e.WindowBase(); base <= submitSlots {
		t.Fatalf("window base %d after drain, want past the submission epoch %d (5x the window)", base, submitSlots)
	}

	ss := e.SLO().Stats()
	if ss.Finalized != len(admitted) || ss.Tracked != 0 {
		t.Fatalf("SLO accounts: %d finalized, %d open; want %d finalized, 0 open",
			ss.Finalized, ss.Tracked, len(admitted))
	}
	for _, id := range admitted {
		entry, ok := e.SLO().Get(id)
		if !ok || !entry.Finalized {
			t.Fatalf("placement %d not finalized: %+v %v", id, entry, ok)
		}
		if !entry.Met() && !entry.Degraded {
			t.Fatalf("placement %d missed its SLO without a degraded mark: %+v", id, entry)
		}
	}

	rs := e.RepairStats()
	if rs.Repairs == 0 {
		t.Fatal("rolling soak produced zero repairs; injection too weak to exercise the pipeline")
	}
	if int(rs.Repairs) != ss.Repairs {
		t.Fatalf("controller counted %d repairs, SLO tracker %d", rs.Repairs, ss.Repairs)
	}

	// The whole live window is drained back to full capacity.
	base := e.WindowBase()
	for j, cl := range n.Cloudlets {
		for s := base; s <= base+window-1; s++ {
			if r := e.ledger.Residual(j, s); r != cl.Capacity {
				t.Fatalf("cloudlet %d slot %d residual %d after drain, want %d", j, s, r, cl.Capacity)
			}
		}
	}

	// The window gauges expose the advanced base.
	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf("revnfd_window_base %d", base)) {
		t.Errorf("metrics missing revnfd_window_base %d", base)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf("revnfd_window_size %d", window)) {
		t.Errorf("metrics missing revnfd_window_size %d", window)
	}
}

// TestSoakRollingHorizonSharded races concurrent sharded submissions
// against the advancing window: under -race this is the rolling mode's
// data-race check. Ticks interleave with in-flight proposals, so commits
// can land on a base the ledger is about to retire; the engine must
// absorb those as conflicts or deferred advances, never as corruption.
func TestSoakRollingHorizonSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("long-window rolling soak; skipped with -short")
	}
	const (
		window   = 30
		runSlots = 160 // > 5 window lengths
	)
	n := soakNetwork()
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  3,
		InstanceMTTR:  2,
		CloudletRates: soakRates(n),
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := newOnsiteScheduler(t, n, window)
	e, err := New(Config{
		Network: n, Scheduler: sched, Horizon: window, Rolling: true,
		Workers: 4, Chaos: inj, RepairAttempts: 2, QueueSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)
	if e.Workers() != 4 {
		t.Fatalf("workers = %d, want sharded 4", e.Workers())
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var admitted []int
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Submit(context.Background(), AdmissionRequest{
					VNF: 0, Reliability: 0.9, Duration: 1 + (w+i)%4, Payment: 100,
				})
				if err != nil {
					continue // backpressure or shutdown racing the clock
				}
				if res.Admitted {
					mu.Lock()
					admitted = append(admitted, res.ID)
					mu.Unlock()
				}
			}
		}(w)
	}
	for slot := 1; slot < runSlots; slot = e.Tick().Slot {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for i := 0; i < window+5; i++ {
		e.Tick()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(admitted) == 0 {
		t.Fatal("sharded rolling soak admitted nothing")
	}
	if base := e.WindowBase(); base <= runSlots-window {
		t.Fatalf("window base %d after drain, want past %d", base, runSlots-window)
	}
	for _, id := range admitted {
		entry, ok := e.SLO().Get(id)
		if !ok {
			t.Fatalf("placement %d has no SLO account", id)
		}
		if !entry.Finalized {
			t.Fatalf("placement %d not finalized: %+v", id, entry)
		}
		if !entry.Met() && !entry.Degraded {
			t.Fatalf("placement %d missed its SLO without a degraded mark: %+v", id, entry)
		}
	}
	base := e.WindowBase()
	for j, cl := range n.Cloudlets {
		for s := base; s <= base+window-1; s++ {
			if r := e.ledger.Residual(j, s); r != cl.Capacity {
				t.Fatalf("cloudlet %d slot %d residual %d after drain, want %d", j, s, r, cl.Capacity)
			}
		}
	}
}

// TestDegradedExpiryPastHorizon is the regression test for the degraded
// expiry bookkeeping, on a timeline a fixed ledger cannot host: the
// placement's window [T-2, T+3] extends past the old horizon T, it is
// marked degraded mid-window by the failure runtime (a capacity-starved
// single-cloudlet fleet makes every repair fail), and at expiry it must
// release its reservation exactly once, keep the degraded mark instead of
// flipping to expired, and unpin the window so the base advances past it.
func TestDegradedExpiryPastHorizon(t *testing.T) {
	const window = 10
	// One cloudlet whose capacity exactly fits one placement (2 instances x
	// demand 2): make-before-break repairs can never fit on top, so the
	// first failure episode burns the repair budget and degrades.
	n := &core.Network{
		Catalog: []core.VNF{{ID: 0, Name: "fw", Demand: 2, Reliability: 0.8}},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: -1, Capacity: 4, Reliability: 0.99},
		},
	}
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  2,
		InstanceMTTR:  2,
		CloudletRates: []float64{0.5}, // down half the time: failure guaranteed fast
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := newOnsiteScheduler(t, n, window)
	e, err := New(Config{
		Network: n, Scheduler: sched, Horizon: window, Rolling: true,
		Chaos: inj, RepairAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	// Walk the clock to slot window-2 so the admitted window [window-2,
	// window+3] reaches past the old fixed horizon.
	for e.Slot() < window-2 {
		e.Tick()
	}
	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 6, Payment: 100})
	if !res.Admitted {
		t.Fatalf("placement spanning past the old horizon rejected in rolling mode: %+v", res)
	}
	arrival := res.Slot
	end := arrival + 5
	if end <= window {
		t.Fatalf("test bug: window [%d,%d] does not extend past T=%d", arrival, end, window)
	}

	// Run out the window. The chaos injector takes the only cloudlet down
	// within a few slots; the repair cannot fit; the placement degrades.
	for e.Slot() <= end {
		e.Tick()
	}
	rec, ok := e.Placement(res.ID)
	if !ok {
		t.Fatalf("placement %d vanished", res.ID)
	}
	if rec.State != StateDegraded {
		t.Fatalf("placement state %q after expiry, want %q (chaos too weak? seed drifted?)",
			rec.State, StateDegraded)
	}
	entry, ok := e.SLO().Get(res.ID)
	if !ok || !entry.Finalized || !entry.Degraded {
		t.Fatalf("SLO account not finalized degraded: %+v %v", entry, ok)
	}
	if got := e.Stats().Expired; got != 1 {
		t.Fatalf("expired count = %d, want exactly 1 (release exactly once)", got)
	}

	// The reservation was released exactly once: the live window is back at
	// full capacity, and further ticks must not release again (a second
	// release would underflow and panic).
	check := func() {
		base := e.WindowBase()
		for s := base; s <= base+window-1; s++ {
			if r := e.ledger.Residual(0, s); r != 4 {
				t.Fatalf("slot %d residual %d, want full 4", s, r)
			}
		}
	}
	check()
	for i := 0; i < 3; i++ {
		e.Tick()
	}
	check()
	if base := e.WindowBase(); base <= end {
		t.Fatalf("window base %d still pinned by the expired degraded placement (end %d)", base, end)
	}

	// Continuous operation past the degraded epoch: the next request admits.
	res2 := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 100})
	if !res2.Admitted {
		t.Fatalf("post-degradation request rejected: %+v", res2)
	}
}
