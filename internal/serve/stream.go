package serve

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"

	"revnf/internal/wire"
)

// StreamServer serves the persistent-connection admission protocols
// defined by internal/wire on top of an Engine: newline-delimited JSON
// and the length-prefixed binary framing. One listener serves both — the
// first byte of a connection selects the protocol ('R' opens the RVNF
// binary preamble; anything else is parsed as NDJSON).
//
// # Pipeline
//
// Each connection runs two goroutines. The reader decodes requests into
// batches — a batch closes at streamBatchSize requests or as soon as the
// socket has no more buffered bytes, so batch size adapts to the offered
// load (1 at low rate, large under saturation) without a flush timer —
// and hands them to the decider over a bounded channel. The decider calls
// Engine.SubmitBatch and writes the decisions back in request order.
//
// # Ordering and backpressure
//
// Responses are written strictly in request order per connection, and
// SubmitBatch allocates IDs in batch order, so a request stream decided
// over NDJSON, binary frames, or individual HTTP posts yields
// bit-identical decisions (the golden cross-protocol test pins this).
// The pending-batch channel is the per-connection backpressure bound:
// when the engine falls behind, the reader blocks and the kernel closes
// the TCP window. Engine-level overload surfaces as per-request
// queue-full decisions; engine shutdown as a terminal error record
// (ReasonClosed) after which the connection closes.
type StreamServer struct {
	e *Engine

	// batchSize caps requests per SubmitBatch call; pending bounds the
	// decoded-but-undecided batches per connection.
	batchSize int
	pending   int

	mu        sync.Mutex
	listeners map[net.Listener]struct{} // guarded by mu
	conns     map[net.Conn]struct{}     // guarded by mu
	closed    bool                      // guarded by mu
	wg        sync.WaitGroup
}

const (
	// streamBatchSize is the default decode-batch cap. 256 amortizes the
	// engine synchronization well past the point of diminishing returns
	// while keeping a batch's decisions well under a socket buffer.
	streamBatchSize = 256
	// streamPendingBatches bounds decoded batches waiting per connection;
	// small by design — the queue is for overlap, not buffering.
	streamPendingBatches = 2
	// streamBufSize sizes the per-connection read and write buffers.
	streamBufSize = 64 << 10
)

// NewStreamServer returns a StreamServer over e.
func NewStreamServer(e *Engine) *StreamServer {
	return &StreamServer{
		e:         e,
		batchSize: streamBatchSize,
		pending:   streamPendingBatches,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections from ln until the listener fails or Close is
// called, serving each connection on its own goroutines. It returns nil
// after Close.
func (s *StreamServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for the
// connection goroutines to finish. Safe to call more than once.
func (s *StreamServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// ServeConn serves one already-accepted connection synchronously,
// returning when it closes. Exported so tests can drive the protocol
// over a net.Pipe.
func (s *StreamServer) ServeConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, streamBufSize)
	bw := bufio.NewWriterSize(conn, streamBufSize)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.Magic[0] {
		if err := wire.ReadPreamble(br); err != nil {
			s.e.ingest.streamErrors.Add(1)
			buf := wire.AppendErrorFrame(nil, 400, wire.ReasonInvalid, err.Error())
			bw.Write(buf)
			bw.Flush()
			return
		}
		s.e.ingest.frameConns.Add(1)
		s.serveConn(conn, br, bw, frameCodec{})
	} else {
		s.e.ingest.ndjsonConns.Add(1)
		s.serveConn(conn, br, bw, ndjsonCodec{})
	}
}

// streamBatch is one reader-to-decider hand-off: the decoded requests,
// their decisions, and optionally a terminal error to emit after them.
type streamBatch struct {
	reqs []AdmissionRequest
	out  []AdmissionResult
	term *streamError
}

// streamError is a terminal protocol or engine error; the decider emits
// it in order and closes the connection.
type streamError struct {
	code   int
	reason wire.ReasonCode
	detail string
}

func (e *streamError) Error() string { return e.detail }

// streamCodec is the protocol-specific half of the connection pipeline.
type streamCodec interface {
	// readRequest decodes the next request, reporting io.EOF at a clean
	// end of stream and a *streamError (wrapped) for protocol violations.
	readRequest(br *bufio.Reader, req *wire.Request) error
	appendDecision(buf []byte, d *wire.Decision) []byte
	appendError(buf []byte, e *streamError) []byte
	countRequests(e *Engine, n int)
}

// serveConn runs the reader/decider pipeline over one connection.
func (s *StreamServer) serveConn(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, codec streamCodec) {
	pendingCh := make(chan *streamBatch, s.pending)
	freeCh := make(chan *streamBatch, s.pending+1)
	for i := 0; i < s.pending+1; i++ {
		freeCh <- &streamBatch{
			reqs: make([]AdmissionRequest, 0, s.batchSize),
			out:  make([]AdmissionResult, 0, s.batchSize),
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.decider(conn, bw, codec, pendingCh, freeCh)
	}()

	b := <-freeCh
	flush := func() bool {
		if len(b.reqs) == 0 && b.term == nil {
			return true
		}
		select {
		case pendingCh <- b:
		case <-done:
			return false // decider bailed (write error); stop reading
		}
		select {
		case b = <-freeCh:
		case <-done:
			return false
		}
		return true
	}
	var wr wire.Request
	for {
		err := codec.readRequest(br, &wr)
		if err != nil {
			var se *streamError
			switch {
			case errors.Is(err, io.EOF):
				// Clean end of stream: flush the tail and wind down.
			case errors.As(err, &se):
				s.e.ingest.streamErrors.Add(1)
				b.term = se
			default:
				// Transport error (reset, force-close): nothing to send.
			}
			flush()
			break
		}
		codec.countRequests(s.e, 1)
		b.reqs = append(b.reqs, AdmissionRequest{
			VNF:         wr.VNF,
			Reliability: wr.Reliability,
			Arrival:     wr.Arrival,
			Duration:    wr.Duration,
			Payment:     wr.Payment,
			Scheme:      wr.Scheme,
		})
		// Close the batch at the cap, or as soon as the socket has nothing
		// more buffered: batch size adapts to the offered load.
		if len(b.reqs) >= s.batchSize || br.Buffered() == 0 {
			if !flush() {
				break
			}
		}
	}
	close(pendingCh)
	<-done
}

// decider drains batches: decide, encode, write, recycle.
func (s *StreamServer) decider(conn net.Conn, bw *bufio.Writer, codec streamCodec, pendingCh, freeCh chan *streamBatch) {
	buf := make([]byte, 0, 4096)
	for b := range pendingCh {
		if len(b.reqs) > 0 {
			s.e.ingest.observeBatch(len(b.reqs))
			b.out = b.out[:len(b.reqs)]
			if err := s.e.SubmitBatch(context.Background(), b.reqs, b.out); err != nil {
				// ErrClosed (shutdown) is the only error SubmitBatch can
				// return here; report it in place of the batch's decisions.
				b.term = &streamError{code: 503, reason: wire.ReasonClosed, detail: "engine has shut down"}
				if !errors.Is(err, ErrClosed) {
					b.term.reason = wire.ReasonInternal
					b.term.detail = err.Error()
				}
				s.e.ingest.streamErrors.Add(1)
			} else {
				buf = buf[:0]
				for i := range b.out {
					res := &b.out[i]
					d := wire.Decision{
						ID:       uint64(res.ID),
						Slot:     res.Slot,
						Admitted: res.Admitted,
						Reason:   wire.CodeForReason(res.Reason),
					}
					buf = codec.appendDecision(buf, &d)
				}
				if _, err := bw.Write(buf); err != nil {
					conn.Close()
					return
				}
				if err := bw.Flush(); err != nil {
					conn.Close()
					return
				}
			}
		}
		if b.term != nil {
			bw.Write(codec.appendError(buf[:0], b.term))
			bw.Flush()
			conn.Close()
			return
		}
		b.reqs = b.reqs[:0]
		b.out = b.out[:0]
		freeCh <- b
	}
	bw.Flush()
}

// ndjsonCodec implements streamCodec for newline-delimited JSON.
type ndjsonCodec struct{}

func (ndjsonCodec) readRequest(br *bufio.Reader, req *wire.Request) error {
	for {
		line, err := br.ReadSlice('\n')
		if err != nil {
			if errors.Is(err, io.EOF) && len(allWS(line)) > 0 {
				// Final line without a trailing newline.
				if derr := wire.DecodeNDJSONRequest(line, req); derr != nil {
					return &streamError{code: 400, reason: wire.ReasonInvalid, detail: derr.Error()}
				}
				return nil
			}
			if errors.Is(err, bufio.ErrBufferFull) {
				return &streamError{code: 400, reason: wire.ReasonInvalid,
					detail: "request line exceeds buffer"}
			}
			return err
		}
		if trimmed := allWS(line); len(trimmed) == 0 {
			continue // tolerate blank keep-alive lines
		}
		if derr := wire.DecodeNDJSONRequest(line, req); derr != nil {
			return &streamError{code: 400, reason: wire.ReasonInvalid, detail: derr.Error()}
		}
		return nil
	}
}

func (ndjsonCodec) appendDecision(buf []byte, d *wire.Decision) []byte {
	return wire.AppendNDJSONDecision(buf, d)
}

func (ndjsonCodec) appendError(buf []byte, e *streamError) []byte {
	return wire.AppendNDJSONError(buf, e.code, e.reason, e.detail)
}

func (ndjsonCodec) countRequests(e *Engine, n int) {
	e.ingest.ndjsonReqs.Add(uint64(n))
}

// allWS returns line with leading/trailing JSON whitespace stripped (nil
// when nothing remains).
func allWS(line []byte) []byte {
	start, end := 0, len(line)
	for start < end && isWS(line[start]) {
		start++
	}
	for end > start && isWS(line[end-1]) {
		end--
	}
	return line[start:end]
}

func isWS(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// frameCodec implements streamCodec for the binary framing. Each
// connection gets its own codec value carrying the frame reader.
type frameCodec struct{}

func (frameCodec) readRequest(br *bufio.Reader, req *wire.Request) error {
	// The FrameReader state is just a scratch buffer; reconstructing the
	// header read per frame off the bufio.Reader keeps this codec
	// stateless. Decode straight from the buffered bytes.
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return err
	}
	length := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if length < 1 || length > wire.MaxFrameSize {
		return &streamError{code: 400, reason: wire.ReasonInvalid, detail: "bad frame length"}
	}
	if hdr[4] != wire.FrameRequest {
		return &streamError{code: 400, reason: wire.ReasonInvalid, detail: "unexpected frame type"}
	}
	payload, err := br.Peek(length - 1)
	if err == nil {
		derr := wire.DecodeRequest(payload, req)
		br.Discard(length - 1)
		if derr != nil {
			return &streamError{code: 400, reason: wire.ReasonInvalid, detail: derr.Error()}
		}
		return nil
	}
	// Frame larger than the buffer window (cannot happen for request
	// frames, whose payload is 28 bytes, but keep the decoder total).
	return &streamError{code: 400, reason: wire.ReasonInvalid, detail: "truncated frame"}
}

func (frameCodec) appendDecision(buf []byte, d *wire.Decision) []byte {
	return wire.AppendDecisionFrame(buf, d)
}

func (frameCodec) appendError(buf []byte, e *streamError) []byte {
	return wire.AppendErrorFrame(buf, e.code, e.reason, e.detail)
}

func (frameCodec) countRequests(e *Engine, n int) {
	e.ingest.frameReqs.Add(uint64(n))
}
