// Package serve turns the repo's online admission algorithms into a
// long-running service. The paper's Algorithms 1–2 are online by
// construction — each request must be accepted or rejected the moment it
// arrives. This package supplies the concurrency shell around a
// scheduler:
//
//   - an Engine with two decision modes: a serial mode that funnels all
//     scheduler and ledger access through a bounded ingest queue into one
//     decision goroutine, and a sharded mode (Config.Workers > 1, for
//     schedulers implementing core.TwoPhaseScheduler with concurrent
//     proposals) in which up to Workers decisions run concurrently —
//     Propose in parallel, capacity arbitrated atomically by the
//     concurrent timeslot.Ledger, scheduler Commit only after the ledger
//     accepted the footprint. Both modes apply backpressure (a full
//     engine rejects rather than buffering without bound);
//   - a slot clock that maps the paper's discrete time slots onto wall
//     time (or onto manual Tick calls in tests) and releases every
//     placement's capacity back to the ledger exactly when its window
//     ends, at slot a_i + d_i;
//   - graceful shutdown that stops intake, drains in-flight admissions,
//     and answers every caller;
//   - Prometheus-format metrics (admissions, rejections by reason,
//     revenue, per-cloudlet utilization, queue depth, admission latency)
//     rendered with internal/metrics.
//
// The HTTP surface over the Engine lives in this package too (NewHandler);
// cmd/revnfd wires it to a net/http server and cmd/revnfload replays
// generated workloads against it.
package serve

import (
	"errors"
	"time"

	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/trace"
)

// Errors returned by the engine.
var (
	ErrBadConfig = errors.New("serve: invalid config")
	// ErrQueueFull reports that the bounded ingest queue is at capacity;
	// the HTTP layer maps it to 503 so callers can back off.
	ErrQueueFull = errors.New("serve: ingest queue full")
	// ErrClosed reports a submission after Shutdown began.
	ErrClosed = errors.New("serve: engine closed")
)

// Config assembles an Engine.
type Config struct {
	// Network is the cloudlet fleet and VNF catalog served.
	Network *core.Network
	// Scheduler makes the admission decisions. The engine owns it
	// exclusively from New onward and serializes every Decide call, per
	// the core.Scheduler concurrency contract.
	Scheduler core.Scheduler
	// Horizon is the number of time slots the daemon serves. In fixed mode
	// (the default) it is the paper's horizon T: the clock can run past it,
	// but no admission window may extend beyond slot T. With Rolling set it
	// is the width W of a rolling window [base, base+W-1] that follows the
	// clock, so the daemon admits forever.
	Horizon int
	// Rolling selects the rolling-horizon mode: the slot ledger becomes a
	// circular window of Horizon slots whose base advances with the clock
	// (never past a live reservation), retired slots are recycled, and the
	// scheduler's dual prices age out with them (core.WindowAdvancer).
	// Decisions for request streams fitting inside the window are
	// bit-identical to fixed mode; fixed mode itself is untouched.
	Rolling bool
	// QueueSize bounds the ingest queue; 0 selects DefaultQueueSize. In
	// sharded mode the same bound caps submissions waiting for a worker
	// token.
	QueueSize int
	// Workers selects the decision concurrency. 0 or 1 is the serial
	// mode. Values above 1 request sharded mode: decisions execute
	// concurrently (bounded by Workers) using the propose/commit protocol
	// of core.TwoPhaseScheduler with the ledger arbitrating capacity. If
	// the scheduler does not support concurrent proposals the engine
	// silently degrades to serial mode; Engine.Workers reports the
	// effective value.
	Workers int
	// SlotDuration is the wall-clock length of one paper time slot. Zero
	// disables the real-time clock: the slot advances only on manual Tick
	// calls, which is the deterministic mode tests use.
	SlotDuration time.Duration
	// AllowViolations force-reserves capacity the ledger does not have,
	// for the raw Algorithm 1 whose analysis bounds (but does not
	// prevent) violations. Feasible schedulers leave it false.
	AllowViolations bool
	// Now overrides the clock used for latency measurement (tests).
	Now func() time.Time
	// Traces, when non-nil, stores decision traces and enables the
	// GET /v1/decisions/{id}/trace endpoint. The engine records its
	// pre-scheduler rejections and final outcomes into it; pass the same
	// store to the scheduler (WithRecorder) so Propose attempts land in
	// the same merged trace.
	Traces *trace.Store
	// Recorder overrides the sink the engine records into; nil selects
	// Traces, or the no-op recorder when Traces is nil too. Wrap the
	// store in trace.NewSampling to thin the stream.
	Recorder trace.Recorder
	// Chaos, when non-nil, turns on the failure-aware runtime: the
	// injector's Markov failure chains advance on every Tick, failed
	// placements are re-placed through the propose/commit pipeline, SLO
	// delivery is accounted per request (GET /v1/placements/{id}/health
	// and /metrics), and per-cloudlet failure rates are estimated online.
	// Requires a Scheduler implementing core.TwoPhaseScheduler and an
	// injector built over the same cloudlet fleet.
	Chaos *chaos.Injector
	// RepairAttempts bounds re-placement attempts per failure episode
	// before a placement is marked degraded; 0 selects
	// repair.DefaultMaxAttempts. Only meaningful with Chaos set.
	RepairAttempts int
}

// DefaultQueueSize is the ingest queue bound when Config.QueueSize is 0.
const DefaultQueueSize = 256

// Rejection reasons reported in results, metrics, and the HTTP error
// envelope. They alias the trace.Reason enum so the decision traces, the
// /metrics label values, and the error envelope's "reason" field all speak
// one vocabulary.
const (
	// ReasonInvalid marks requests that fail model validation.
	ReasonInvalid = string(trace.ReasonInvalid)
	// ReasonStale marks requests whose arrival slot has already passed.
	ReasonStale = string(trace.ReasonStale)
	// ReasonHorizon marks windows extending beyond the served horizon.
	ReasonHorizon = string(trace.ReasonHorizon)
	// ReasonDeclined marks requests the scheduler priced out or could not
	// place — the paper's genuine online rejection.
	ReasonDeclined = string(trace.ReasonDeclined)
	// ReasonOverbooked marks scheduler placements the ledger refused; it
	// indicates a scheduler violating its feasibility contract.
	ReasonOverbooked = string(trace.ReasonOverbooked)
	// ReasonConflict marks sharded-mode requests whose proposals kept
	// losing the capacity race to concurrent commits: the ledger refused
	// the reservation on every bounded retry. It is the concurrency
	// analogue of ReasonDeclined, not a scheduler bug.
	ReasonConflict = string(trace.ReasonConflict)
	// ReasonQueueFull marks submissions dropped by backpressure.
	ReasonQueueFull = string(trace.ReasonQueueFull)
	// ReasonClosed marks submissions after shutdown began.
	ReasonClosed = string(trace.ReasonClosed)
	// ReasonCanceled marks submissions abandoned because the caller's
	// context ended (client disconnect or deadline) before a decision.
	ReasonCanceled = string(trace.ReasonCanceled)
	// ReasonSchemeUnavailable marks requests that pinned a redundancy
	// scheme (the optional "scheme" payload field) different from the one
	// the serving scheduler runs.
	ReasonSchemeUnavailable = string(trace.ReasonSchemeUnavailable)
)
