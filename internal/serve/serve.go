// Package serve turns the repo's online admission algorithms into a
// long-running service. The paper's Algorithms 1–2 are online by
// construction — each request must be accepted or rejected the moment it
// arrives — but every core.Scheduler implementation is single-goroutine
// state machine. This package supplies the concurrency shell around one:
//
//   - an Engine that serializes all scheduler and ledger access behind a
//     bounded ingest queue with backpressure (a full queue rejects rather
//     than buffering without bound);
//   - a slot clock that maps the paper's discrete time slots onto wall
//     time (or onto manual Tick calls in tests) and releases every
//     placement's capacity back to the ledger exactly when its window
//     ends, at slot a_i + d_i;
//   - graceful shutdown that stops intake, drains in-flight admissions,
//     and answers every caller;
//   - Prometheus-format metrics (admissions, rejections by reason,
//     revenue, per-cloudlet utilization, queue depth, admission latency)
//     rendered with internal/metrics.
//
// The HTTP surface over the Engine lives in this package too (NewHandler);
// cmd/revnfd wires it to a net/http server and cmd/revnfload replays
// generated workloads against it.
package serve

import (
	"errors"
	"time"

	"revnf/internal/core"
)

// Errors returned by the engine.
var (
	ErrBadConfig = errors.New("serve: invalid config")
	// ErrQueueFull reports that the bounded ingest queue is at capacity;
	// the HTTP layer maps it to 503 so callers can back off.
	ErrQueueFull = errors.New("serve: ingest queue full")
	// ErrClosed reports a submission after Shutdown began.
	ErrClosed = errors.New("serve: engine closed")
)

// Config assembles an Engine.
type Config struct {
	// Network is the cloudlet fleet and VNF catalog served.
	Network *core.Network
	// Scheduler makes the admission decisions. The engine owns it
	// exclusively from New onward and serializes every Decide call, per
	// the core.Scheduler concurrency contract.
	Scheduler core.Scheduler
	// Horizon is the number of time slots T the daemon serves.
	Horizon int
	// QueueSize bounds the ingest queue; 0 selects DefaultQueueSize.
	QueueSize int
	// SlotDuration is the wall-clock length of one paper time slot. Zero
	// disables the real-time clock: the slot advances only on manual Tick
	// calls, which is the deterministic mode tests use.
	SlotDuration time.Duration
	// AllowViolations force-reserves capacity the ledger does not have,
	// for the raw Algorithm 1 whose analysis bounds (but does not
	// prevent) violations. Feasible schedulers leave it false.
	AllowViolations bool
	// Now overrides the clock used for latency measurement (tests).
	Now func() time.Time
}

// DefaultQueueSize is the ingest queue bound when Config.QueueSize is 0.
const DefaultQueueSize = 256

// Rejection reasons reported in results and metrics.
const (
	// ReasonInvalid marks requests that fail model validation.
	ReasonInvalid = "invalid"
	// ReasonStale marks requests whose arrival slot has already passed.
	ReasonStale = "stale"
	// ReasonHorizon marks windows extending beyond the served horizon.
	ReasonHorizon = "horizon"
	// ReasonDeclined marks requests the scheduler priced out or could not
	// place — the paper's genuine online rejection.
	ReasonDeclined = "declined"
	// ReasonOverbooked marks scheduler placements the ledger refused; it
	// indicates a scheduler violating its feasibility contract.
	ReasonOverbooked = "overbooked"
	// ReasonQueueFull marks submissions dropped by backpressure.
	ReasonQueueFull = "queue-full"
	// ReasonClosed marks submissions after shutdown began.
	ReasonClosed = "closed"
)
