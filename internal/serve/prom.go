package serve

import (
	"io"
	"sort"
	"strconv"

	"revnf/internal/core"
	"revnf/internal/metrics"
)

// WriteMetrics renders the engine's counters in the Prometheus text
// exposition format: admission/rejection/revenue counters, the slot and
// queue gauges, per-cloudlet utilization at the current slot, and the
// admission latency histogram.
func (e *Engine) WriteMetrics(w io.Writer) error {
	s := e.Stats()
	families := []metrics.PromMetric{
		metrics.Counter("revnfd_admissions_total",
			"Requests admitted since start.", float64(s.Admitted)),
		rejectionFamily(s.Rejections),
		metrics.Counter("revnfd_revenue_total",
			"Summed payment of admitted requests (paper objective (6)).", s.Revenue),
		metrics.Counter("revnfd_expirations_total",
			"Placements whose windows ended and whose capacity was released.", float64(s.Expired)),
		metrics.Gauge("revnfd_active_placements",
			"Admitted placements not yet expired.", float64(s.ActivePlacements)),
		metrics.Gauge("revnfd_current_slot",
			"Current time slot of the slot clock.", float64(s.Slot)),
		metrics.Gauge("revnfd_horizon_slots",
			"Served horizon in slots: the fixed T, or the rolling window width W.", float64(s.Horizon)),
		metrics.Gauge("revnfd_window_base",
			"First live slot of the ledger window; fixed at 1 without -horizon-mode rolling.",
			float64(s.WindowBase)),
		metrics.Gauge("revnfd_window_size",
			"Width of the live ledger window in slots (equals revnfd_horizon_slots).",
			float64(s.Horizon)),
		metrics.Gauge("revnfd_queue_depth",
			"Admissions waiting in the bounded ingest queue.", float64(s.QueueDepth)),
		metrics.Gauge("revnfd_queue_capacity",
			"Capacity of the bounded ingest queue.", float64(s.QueueCapacity)),
		metrics.Gauge("revnfd_workers",
			"Decision concurrency: 1 in serial mode, the shard count in sharded mode.", float64(s.Workers)),
		metrics.Gauge("revnfd_inflight_decisions",
			"Decisions executing right now (sharded mode).", float64(s.InFlight)),
		metrics.Counter("revnfd_conflict_retries_total",
			"Ledger reservation refusals under concurrent commit races; each triggers a re-propose.",
			float64(s.ConflictRetries)),
		utilizationFamily(s),
		s.Latency.Metric("revnfd_admission_latency_seconds",
			"Latency from submission to admission decision."),
	}
	families = append(families, e.ingestFamilies()...)
	if e.traces != nil {
		st := e.traces.Stats()
		families = append(families,
			metrics.Counter("revnfd_trace_recorded_total",
				"Decision-trace records accepted by the ring store.", float64(st.Recorded)),
			metrics.Counter("revnfd_trace_evicted_total",
				"Decision traces evicted from the ring store to make room.", float64(st.Evicted)),
			metrics.Gauge("revnfd_trace_store_entries",
				"Decision traces currently resident in the ring store.", float64(st.Len)),
			metrics.Gauge("revnfd_trace_store_capacity",
				"Capacity of the decision-trace ring store.", float64(st.Capacity)),
		)
	}
	if e.runtime != nil {
		families = append(families, e.runtimeFamilies()...)
	}
	if lr, ok := e.sched.(core.LambdaReader); ok {
		maxSlot := s.WindowBase + e.horizon - 1
		if !s.Rolling {
			maxSlot = e.horizon
		}
		families = append(families, lambdaFamily(lr, len(e.network.Cloudlets), s.Slot, maxSlot))
	}
	return metrics.WriteProm(w, families)
}

// runtimeFamilies renders the failure runtime: chaos progress, repair
// outcomes, SLO delivery, and the online reliability estimates.
func (e *Engine) runtimeFamilies() []metrics.PromMetric {
	rt := e.runtime
	rs := rt.ctrl.Stats()
	ss := rt.slo.Stats()
	est := metrics.PromMetric{
		Name: "revnfd_estimated_reliability",
		Help: "Online Beta-posterior estimate of each cloudlet's availability r(c_j).",
		Type: "gauge",
	}
	for j := 0; j < rt.est.Cloudlets(); j++ {
		est.Samples = append(est.Samples, metrics.PromSample{
			Labels: []metrics.LabelPair{{Name: "cloudlet", Value: strconv.Itoa(j)}},
			Value:  rt.est.CloudletReliability(j),
		})
	}
	return []metrics.PromMetric{
		metrics.Counter("revnfd_chaos_slots_total",
			"Slots the chaos injector has stepped.", float64(rt.slots.Load())),
		metrics.Counter("revnfd_failure_episodes_total",
			"Failure episodes opened: placements whose surviving instances dropped below their reliability target.",
			float64(rs.Episodes)),
		metrics.Counter("revnfd_repairs_total",
			"Failure episodes closed by a successful re-placement through the admission pipeline.",
			float64(rs.Repairs)),
		metrics.Counter("revnfd_repair_failures_total",
			"Repair attempts that could not be placed (declined, priced out, or out of capacity).",
			float64(rs.FailedAttempts)),
		metrics.Counter("revnfd_degraded_placements_total",
			"Placements whose repair budget was exhausted or whose window ended below its SLO.",
			float64(ss.Degraded)),
		metrics.Counter("revnfd_downtime_slots_total",
			"Placement-slots with no live instance, summed over all tracked placements.",
			float64(ss.DowntimeSlots)),
		metrics.Counter("revnfd_slo_met_total",
			"Expired placements that delivered their required availability.", float64(ss.Met)),
		metrics.Counter("revnfd_slo_missed_total",
			"Expired placements that delivered below their required availability.", float64(ss.Missed)),
		metrics.Gauge("revnfd_slo_mean_provisioned_availability",
			"Mean availability promised at admission across expired placements.", ss.MeanProvisioned),
		metrics.Gauge("revnfd_slo_mean_observed_availability",
			"Mean availability delivered across expired placements.", ss.MeanObserved),
		rt.slo.RepairLatency().Metric("revnfd_repair_latency_slots",
			"Slots failure episodes stayed open before a successful repair."),
		est,
	}
}

// lambdaFamily summarizes the primal-dual scheduler's dual prices: per
// cloudlet, the price λ_{tj} at the current slot and the maximum from the
// current slot to the end of the live window (maxSlot — the horizon T in
// fixed mode, the window's far edge in rolling mode). The full T×K
// surface would be an unbounded label space; these two gauges track how
// congestion pricing is building up.
func lambdaFamily(lr core.LambdaReader, cloudlets, slot, maxSlot int) metrics.PromMetric {
	fam := metrics.PromMetric{
		Name: "revnfd_dual_price",
		Help: "Dual price lambda of each cloudlet: at the current slot, and the max over the remaining window.",
		Type: "gauge",
	}
	for j := 0; j < cloudlets; j++ {
		now := lr.Lambda(j, slot)
		max := 0.0
		for t := slot; t <= maxSlot; t++ {
			if v := lr.Lambda(j, t); v > max {
				max = v
			}
		}
		label := strconv.Itoa(j)
		fam.Samples = append(fam.Samples,
			metrics.PromSample{
				Labels: []metrics.LabelPair{{Name: "cloudlet", Value: label}, {Name: "window", Value: "current"}},
				Value:  now,
			},
			metrics.PromSample{
				Labels: []metrics.LabelPair{{Name: "cloudlet", Value: label}, {Name: "window", Value: "max"}},
				Value:  max,
			},
		)
	}
	return fam
}

func rejectionFamily(rejections map[string]uint64) metrics.PromMetric {
	fam := metrics.PromMetric{
		Name: "revnfd_rejections_total",
		Help: "Requests rejected since start, by reason.",
		Type: "counter",
	}
	// Every defined reason is always exposed so scrapes see stable series.
	reasons := []string{ReasonInvalid, ReasonStale, ReasonHorizon, ReasonDeclined,
		ReasonOverbooked, ReasonConflict, ReasonQueueFull, ReasonClosed, ReasonCanceled}
	for r := range rejections {
		found := false
		for _, known := range reasons {
			if r == known {
				found = true
				break
			}
		}
		if !found {
			reasons = append(reasons, r)
		}
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fam.Samples = append(fam.Samples, metrics.PromSample{
			Labels: []metrics.LabelPair{{Name: "reason", Value: r}},
			Value:  float64(rejections[r]),
		})
	}
	return fam
}

func utilizationFamily(s Stats) metrics.PromMetric {
	fam := metrics.PromMetric{
		Name: "revnfd_cloudlet_utilization",
		Help: "Fraction of each cloudlet's capacity in use at the current slot.",
		Type: "gauge",
	}
	for j := range s.CloudletCapacity {
		util := 0.0
		if s.CloudletCapacity[j] > 0 {
			util = float64(s.CloudletUsed[j]) / float64(s.CloudletCapacity[j])
		}
		fam.Samples = append(fam.Samples, metrics.PromSample{
			Labels: []metrics.LabelPair{{Name: "cloudlet", Value: strconv.Itoa(j)}},
			Value:  util,
		})
	}
	return fam
}
