package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/trace"
)

// soakNetwork is an eight-cloudlet fleet sized so the soak's steady-state
// load uses a modest fraction of capacity: repairs (make-before-break)
// always have room, and degradation comes from pricing or injected
// failure, not from a artificially starved fleet.
func soakNetwork() *core.Network {
	n := &core.Network{
		Catalog: []core.VNF{{ID: 0, Name: "fw", Demand: 2, Reliability: 0.8}},
	}
	for j := 0; j < 8; j++ {
		n.Cloudlets = append(n.Cloudlets, core.Cloudlet{
			ID: j, Node: -1, Capacity: 60,
			// 0.96 .. 0.995: every cloudlet can host a 0.9-requirement
			// placement with two instances.
			Reliability: 0.96 + 0.005*float64(j),
		})
	}
	return n
}

// soakRates returns the injector's true cloudlet rates: each 0.03 below
// catalog, so the daemon provisions optimistically and the estimator has
// a real gap to learn.
func soakRates(n *core.Network) []float64 {
	rates := make([]float64, len(n.Cloudlets))
	for j, cl := range n.Cloudlets {
		rates[j] = cl.Reliability - 0.03
	}
	return rates
}

// TestSoakFailureRuntime is the subsystem's acceptance soak: a seeded
// injector drives cloudlet and instance failures against hundreds of
// admitted placements on the manual clock; every placement must end its
// window meeting its provisioned availability or be explicitly marked
// degraded, repairs must flow through the admission pipeline without
// unbalancing the ledger, and the online rate estimates must converge on
// the injector's true rates.
func TestSoakFailureRuntime(t *testing.T) {
	const (
		horizon     = 160
		submitSlots = 150
		perSlot     = 6
	)
	n := soakNetwork()
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  4,
		InstanceMTTR:  2,
		CloudletRates: soakRates(n),
		Seed:          2026,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := trace.NewStore(4096)
	sched := newOnsiteScheduler(t, n, horizon)
	e, err := New(Config{
		Network: n, Scheduler: sched, Horizon: horizon,
		Chaos: inj, RepairAttempts: 3, Traces: store, QueueSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	var admitted []int
	for slot := 1; slot <= submitSlots; slot = e.Tick().Slot {
		for i := 0; i < perSlot; i++ {
			res := submit(t, e, AdmissionRequest{
				VNF:         0,
				Reliability: 0.9,
				Duration:    1 + (slot+i)%5,
				Payment:     100,
			})
			if res.Admitted {
				admitted = append(admitted, res.ID)
			}
		}
		// Ledger invariant under live repairs: residuals stay within
		// [0, capacity] at the current slot.
		for j, cl := range n.Cloudlets {
			if r := e.ledger.Residual(j, slot); r < 0 || r > cl.Capacity {
				t.Fatalf("slot %d cloudlet %d residual %d out of [0,%d]", slot, j, r, cl.Capacity)
			}
		}
	}
	// Drain: advance past every window so all accounts finalize.
	for e.Slot() <= horizon {
		e.Tick()
	}

	if len(admitted) < 500 {
		t.Fatalf("admitted %d placements, want ≥ 500 for a meaningful soak", len(admitted))
	}

	// Acceptance: every placement met its SLO or is explicitly degraded,
	// and degraded ones say so in their decision trace.
	ss := e.SLO().Stats()
	if ss.Finalized != len(admitted) || ss.Tracked != 0 {
		t.Fatalf("SLO accounts: %d finalized, %d open; want %d finalized, 0 open", ss.Finalized, ss.Tracked, len(admitted))
	}
	for _, id := range admitted {
		entry, ok := e.SLO().Get(id)
		if !ok || !entry.Finalized {
			t.Fatalf("placement %d not finalized: %+v %v", id, entry, ok)
		}
		if !entry.Met() && !entry.Degraded {
			t.Fatalf("placement %d missed its SLO without a degraded mark: %+v", id, entry)
		}
		if entry.Degraded {
			dt, ok := store.Get(id)
			if !ok {
				t.Fatalf("degraded placement %d has no trace", id)
			}
			if dt.FinalReason() != trace.ReasonDegraded {
				t.Fatalf("degraded placement %d final reason %q, want %q", id, dt.FinalReason(), trace.ReasonDegraded)
			}
		}
	}

	// Repairs happened, all through propose/reserve/commit (the only
	// repair path), and both books agree.
	rs := e.RepairStats()
	if rs.Repairs == 0 {
		t.Fatal("soak produced zero repairs; injection too weak to exercise the pipeline")
	}
	if int(rs.Repairs) != ss.Repairs {
		t.Fatalf("controller counted %d repairs, SLO tracker %d", rs.Repairs, ss.Repairs)
	}

	// The ledger is fully drained: every slot of every cloudlet is back
	// to full capacity, so repairs released exactly what they reserved.
	for j, cl := range n.Cloudlets {
		for slot := 1; slot <= horizon; slot++ {
			if r := e.ledger.Residual(j, slot); r != cl.Capacity {
				t.Fatalf("cloudlet %d slot %d residual %d after drain, want %d", j, slot, r, cl.Capacity)
			}
		}
	}

	// Online estimates converge within 10% of the injector's true rates.
	est := e.Estimator()
	for j := range n.Cloudlets {
		truth := inj.TrueRate(j)
		got := est.CloudletReliability(j)
		if math.Abs(got-truth) > 0.10*truth {
			t.Errorf("cloudlet %d estimate %.4f vs true rate %.4f: off by more than 10%%", j, got, truth)
		}
	}

	// The repairs are visible on /metrics.
	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), fmt.Sprintf("revnfd_repairs_total %d", rs.Repairs)) {
		t.Errorf("metrics missing revnfd_repairs_total %d", rs.Repairs)
	}
	if !strings.Contains(sb.String(), "revnfd_repair_latency_slots_count") {
		t.Error("metrics missing repair latency histogram")
	}
}

// TestSoakFailureRuntimeSharded races concurrent sharded submissions
// against the ticking failure runtime; under -race this is the
// subsystem's data-race check, and the post-drain invariants must hold
// exactly as in the serial soak.
func TestSoakFailureRuntimeSharded(t *testing.T) {
	const horizon = 60
	n := soakNetwork()
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  3,
		InstanceMTTR:  2,
		CloudletRates: soakRates(n),
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := newOnsiteScheduler(t, n, horizon)
	e, err := New(Config{
		Network: n, Scheduler: sched, Horizon: horizon,
		Workers: 4, Chaos: inj, RepairAttempts: 2, QueueSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)
	if e.Workers() != 4 {
		t.Fatalf("workers = %d, want sharded 4", e.Workers())
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var mu sync.Mutex
	var admitted []int
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Submit(context.Background(), AdmissionRequest{
					VNF: 0, Reliability: 0.9, Duration: 1 + (w+i)%4, Payment: 100,
				})
				if err != nil {
					continue // backpressure or shutdown racing the clock
				}
				if res.Admitted {
					mu.Lock()
					admitted = append(admitted, res.ID)
					mu.Unlock()
				}
			}
		}(w)
	}
	// Tick the failure runtime concurrently with the submitters, pacing
	// the clock so each slot sees real submission traffic.
	for slot := 1; slot < horizon-4; slot = e.Tick().Slot {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for e.Slot() <= horizon {
		e.Tick()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(admitted) == 0 {
		t.Fatal("sharded soak admitted nothing")
	}
	for _, id := range admitted {
		entry, ok := e.SLO().Get(id)
		if !ok {
			t.Fatalf("placement %d has no SLO account", id)
		}
		if !entry.Finalized {
			t.Fatalf("placement %d not finalized: %+v", id, entry)
		}
		if !entry.Met() && !entry.Degraded {
			t.Fatalf("placement %d missed its SLO without a degraded mark: %+v", id, entry)
		}
	}
	for j, cl := range n.Cloudlets {
		for slot := 1; slot <= horizon; slot++ {
			if r := e.ledger.Residual(j, slot); r != cl.Capacity {
				t.Fatalf("cloudlet %d slot %d residual %d after drain, want %d", j, slot, r, cl.Capacity)
			}
		}
	}
}
