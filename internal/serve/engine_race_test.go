package serve

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"revnf/internal/core"
)

// plainScheduler implements only the serialized core.Scheduler contract,
// not core.TwoPhaseScheduler.
type plainScheduler struct{}

func (plainScheduler) Name() string        { return "plain" }
func (plainScheduler) Scheme() core.Scheme { return core.OnSite }
func (plainScheduler) Decide(core.Request, core.CapacityView) (core.Placement, bool) {
	return core.Placement{}, false
}

// TestShardedDegradesToSerial checks the graceful fallback: Workers > 1
// with a scheduler that cannot propose concurrently must run serial and
// report it.
func TestShardedDegradesToSerial(t *testing.T) {
	e, err := New(Config{Network: testNetwork(), Scheduler: plainScheduler{}, Horizon: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = e.Shutdown(context.Background())
	}()
	if got := e.Workers(); got != 1 {
		t.Fatalf("Workers() = %d after degradation, want 1", got)
	}
	res, err := e.Submit(context.Background(), AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 2, Payment: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted || res.Reason != ReasonDeclined {
		t.Fatalf("degraded engine decision = %+v, want declined", res)
	}
	if s := e.Stats(); s.Workers != 1 || s.InFlight != 0 {
		t.Fatalf("Stats Workers=%d InFlight=%d, want 1 and 0", s.Workers, s.InFlight)
	}
}

// blindScheduler is a two-phase scheduler that always proposes the full
// capacity of cloudlet 0 without consulting the view, so a second
// overlapping admission is guaranteed to lose the ledger reservation.
type blindScheduler struct{}

func (blindScheduler) Name() string        { return "blind" }
func (blindScheduler) Scheme() core.Scheme { return core.OnSite }
func (blindScheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	p, ok := blindScheduler{}.Propose(req, view)
	return p, ok
}
func (blindScheduler) Propose(req core.Request, _ core.CapacityView) (core.Placement, bool) {
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: 0, Instances: 5}}, // 5×demand 2 = full capacity
	}, true
}
func (blindScheduler) Commit(core.Request, core.Placement) {}
func (blindScheduler) Abort(core.Request, core.Placement)  {}
func (blindScheduler) ConcurrentPropose() bool             { return true }

// TestShardedConflictRejection drives the bounded re-propose loop
// deterministically: once capacity is gone, a proposal that never adapts
// loses every ledger reservation and must come back as ReasonConflict
// with the retries counted.
func TestShardedConflictRejection(t *testing.T) {
	e, err := New(Config{Network: testNetwork(), Scheduler: blindScheduler{}, Horizon: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = e.Shutdown(context.Background())
	}()
	ctx := context.Background()
	first, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 3, Payment: 5})
	if err != nil || !first.Admitted {
		t.Fatalf("first submission: %+v, %v", first, err)
	}
	second, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 2, Duration: 3, Payment: 5})
	if err != nil {
		t.Fatal(err)
	}
	if second.Admitted || second.Reason != ReasonConflict {
		t.Fatalf("overlapping submission = %+v, want %s", second, ReasonConflict)
	}
	s := e.Stats()
	if s.ConflictRetries < 3 {
		t.Errorf("ConflictRetries = %d, want ≥ 3 (one per bounded attempt)", s.ConflictRetries)
	}
	if s.Rejections[ReasonConflict] != 1 {
		t.Errorf("conflict rejections = %d, want 1", s.Rejections[ReasonConflict])
	}
}

// countingScheduler wraps blindScheduler with call accounting so tests can
// check the Propose/Commit/Abort pairing the engine promises.
type countingScheduler struct {
	blindScheduler
	proposes, commits, aborts atomic.Int64
}

func (c *countingScheduler) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	c.proposes.Add(1)
	return c.blindScheduler.Propose(req, view)
}
func (c *countingScheduler) Commit(core.Request, core.Placement) { c.commits.Add(1) }
func (c *countingScheduler) Abort(core.Request, core.Placement)  { c.aborts.Add(1) }

// TestShardedConflictExhaustion pins down the full exhaustion path: a
// proposal that keeps losing the ledger reservation is re-proposed exactly
// maxAttempts times, every losing Propose is paired with an Abort, no
// Commit happens for the rejected request, and the ledger carries no
// residue from the lost attempts — after the winner expires, usage returns
// to zero.
func TestShardedConflictExhaustion(t *testing.T) {
	sched := &countingScheduler{}
	e, err := New(Config{Network: testNetwork(), Scheduler: sched, Horizon: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = e.Shutdown(context.Background())
	}()
	if e.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2 (sharded mode)", e.Workers())
	}
	ctx := context.Background()
	first, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5})
	if err != nil || !first.Admitted {
		t.Fatalf("first submission: %+v, %v", first, err)
	}
	second, err := e.Submit(ctx, AdmissionRequest{VNF: 0, Reliability: 0.9, Arrival: 2, Duration: 2, Payment: 7})
	if err != nil {
		t.Fatal(err)
	}
	if second.Admitted || second.Reason != ReasonConflict {
		t.Fatalf("overlapping submission = %+v, want %s", second, ReasonConflict)
	}
	// Pairing: 1 winning propose+commit, then 3 losing propose+abort.
	if got := sched.proposes.Load(); got != 4 {
		t.Errorf("proposes = %d, want 4 (1 admitted + 3 bounded attempts)", got)
	}
	if got := sched.commits.Load(); got != 1 {
		t.Errorf("commits = %d, want 1 (only the admitted request)", got)
	}
	if got := sched.aborts.Load(); got != 3 {
		t.Errorf("aborts = %d, want 3 (one per lost reservation)", got)
	}
	s := e.Stats()
	if s.ConflictRetries != 3 {
		t.Errorf("ConflictRetries = %d, want 3", s.ConflictRetries)
	}
	// Ledger cleanliness: only the winner's footprint is booked...
	if got := s.CloudletUsed[0]; got != 10 {
		t.Errorf("cloudlet 0 used = %d at slot 1, want 10 (winner's footprint)", got)
	}
	// ...and expiring it drains the ledger completely: a leaked reservation
	// from a lost attempt would leave units behind forever.
	e.Tick() // slot 2
	e.Tick() // slot 3: winner (arrival 1, duration 2) expired
	s = e.Stats()
	if s.Expired != 1 {
		t.Errorf("Expired = %d after winner's window, want 1", s.Expired)
	}
	for j, used := range s.CloudletUsed {
		if used != 0 {
			t.Errorf("cloudlet %d used = %d after expiry, want 0 (no leaked reservations)", j, used)
		}
	}
}

// TestShardedEngineStress hammers a 4-worker engine from 8 goroutines
// (with a concurrent slot clock) and then audits the books — run it under
// -race. The load is sized so concurrent proposals race for the same
// tight capacity constantly. Afterwards the test rebuilds per-(cloudlet,
// slot) usage from the admitted placements and requires:
//
//   - no slot of any cloudlet was ever oversubscribed (the ledger's
//     all-or-nothing reservation must hold under every interleaving);
//   - every submission was decided exactly once (admissions plus
//     rejections equal submissions, in both the observed results and the
//     engine's counters);
//   - revenue equals the payment sum of the admitted requests.
func TestShardedEngineStress(t *testing.T) {
	const (
		horizon      = 40
		submitters   = 8
		perSubmitter = 300
		workers      = 4
	)
	e := newTestEngine(t, horizon, func(c *Config) {
		c.Workers = workers
		c.QueueSize = 64
	})
	if e.Workers() != workers {
		t.Fatalf("Workers() = %d, want %d", e.Workers(), workers)
	}

	type admitted struct {
		arrival, duration int
		payment           float64
		placement         core.Placement
	}
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		admits    []admitted
		decided   int
		rejected  int
		submitErr int
	)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < perSubmitter; i++ {
				// Goroutine 0 also drives the slot clock, racing Tick's
				// expiry sweep against in-flight decisions.
				if seed == 0 && i%60 == 59 {
					e.Tick()
				}
				duration := 1 + rng.Intn(4)
				slot := e.Slot()
				arrival := slot + rng.Intn(horizon-duration-slot)
				ar := AdmissionRequest{
					VNF:         0,
					Reliability: 0.9 + 0.05*rng.Float64(),
					Arrival:     arrival,
					Duration:    duration,
					Payment:     1 + 9*rng.Float64(),
				}
				res, err := e.Submit(ctx, ar)
				mu.Lock()
				if err != nil {
					submitErr++ // ErrQueueFull under burst is legitimate
				} else {
					decided++
					if res.Admitted {
						admits = append(admits, admitted{
							arrival: arrival, duration: duration,
							payment: ar.Payment, placement: res.Placement,
						})
					} else {
						rejected++
					}
				}
				mu.Unlock()
			}
		}(int64(g))
	}
	wg.Wait()

	// Audit 1: rebuild per-(cloudlet, slot) usage from the admitted
	// placements. Capacity released by expiry is never re-reserved for
	// past slots (stale arrivals are rejected), so summing every admitted
	// window per slot must respect each cloudlet's capacity.
	n := testNetwork()
	demand := n.Catalog[0].Demand
	usage := make([][]int, len(n.Cloudlets))
	for j := range usage {
		usage[j] = make([]int, horizon+1)
	}
	wantRevenue := 0.0
	for _, a := range admits {
		wantRevenue += a.payment
		for _, as := range a.placement.Assignments {
			for s := a.arrival; s < a.arrival+a.duration; s++ {
				usage[as.Cloudlet][s] += as.Units(demand)
			}
		}
	}
	for j, cl := range n.Cloudlets {
		for s := 1; s <= horizon; s++ {
			if usage[j][s] > cl.Capacity {
				t.Errorf("cloudlet %d slot %d oversubscribed: %d units > capacity %d",
					j, s, usage[j][s], cl.Capacity)
			}
		}
	}

	// Audit 2: the engine's counters agree with the observed decisions.
	s := e.Stats()
	if decided+submitErr != submitters*perSubmitter {
		t.Errorf("decided %d + submit errors %d != %d submissions",
			decided, submitErr, submitters*perSubmitter)
	}
	if s.Admitted != uint64(len(admits)) {
		t.Errorf("Stats.Admitted = %d, observed %d admissions", s.Admitted, len(admits))
	}
	if got := s.RejectedTotal(); got != uint64(rejected+submitErr) {
		t.Errorf("Stats rejected %d, observed %d", got, rejected+submitErr)
	}
	// Revenue is a float sum whose accumulation order differs across
	// interleavings; compare with a tolerance, not bit-exactly.
	if !core.FloatEqTol(s.Revenue, wantRevenue, 1e-6) {
		t.Errorf("Stats.Revenue = %v, observed payment sum %v", s.Revenue, wantRevenue)
	}
	if s.QueueDepth != 0 || s.InFlight != 0 {
		t.Errorf("idle engine reports QueueDepth=%d InFlight=%d", s.QueueDepth, s.InFlight)
	}
	t.Logf("admitted %d, rejected %d, conflicts retried %d", len(admits), rejected, s.ConflictRetries)
}
