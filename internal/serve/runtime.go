package serve

import (
	"fmt"
	"sync/atomic"

	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/repair"
	"revnf/internal/slo"
	"revnf/internal/trace"
)

// failureRuntime bundles the failure-aware subsystem the engine runs when
// Config.Chaos is set: the chaos injector driving the failure model on
// the slot clock, the repair controller deciding which placements to
// re-place, the SLO tracker accounting promise vs delivery, and the
// online failure-rate estimator learning r(c_j) from the injected slot
// states. All mutation happens under the engine mutex inside Tick; the
// tracker, controller, and estimator carry their own locks only so the
// metrics and HTTP paths can read them concurrently.
type failureRuntime struct {
	injector *chaos.Injector
	ctrl     *repair.Controller
	slo      *slo.Tracker
	est      *slo.RateEstimator
	// tp re-places repaired requests through the normal propose/commit
	// pipeline. Non-nil whenever the runtime exists (enforced at New);
	// distinct from Engine.twoPhase, which is non-nil only in sharded
	// mode.
	tp core.TwoPhaseScheduler
	// slots counts chaos-stepped slots; atomic because metrics read it
	// without the engine mutex.
	slots atomic.Uint64
}

// estimatorPriorStrength is the pseudo-slot weight of the catalog prior
// in the online rate estimator: after this many observed slots, evidence
// and prior weigh equally, so estimates leave the catalog quickly without
// starting at the uninformative 1/2.
const estimatorPriorStrength = 4

// newFailureRuntime validates the chaos wiring at New time.
func newFailureRuntime(cfg Config) (*failureRuntime, error) {
	tp, ok := cfg.Scheduler.(core.TwoPhaseScheduler)
	if !ok {
		return nil, fmt.Errorf("%w: chaos injection needs a two-phase scheduler (repairs go through propose/commit); %T is not one", ErrBadConfig, cfg.Scheduler)
	}
	if got, want := cfg.Chaos.Cloudlets(), len(cfg.Network.Cloudlets); got != want {
		return nil, fmt.Errorf("%w: chaos injector models %d cloudlets, network has %d", ErrBadConfig, got, want)
	}
	return &failureRuntime{
		injector: cfg.Chaos,
		ctrl:     repair.New(cfg.RepairAttempts),
		slo:      slo.NewTracker(),
		est:      slo.NewCatalogEstimator(cfg.Network, estimatorPriorStrength),
		tp:       tp,
	}, nil
}

// SLO returns the engine's SLO tracker, nil when chaos is disabled.
func (e *Engine) SLO() *slo.Tracker {
	if e.runtime == nil {
		return nil
	}
	return e.runtime.slo
}

// Estimator returns the online failure-rate estimator (a
// core.ReliabilitySource), nil when chaos is disabled.
func (e *Engine) Estimator() *slo.RateEstimator {
	if e.runtime == nil {
		return nil
	}
	return e.runtime.est
}

// RepairStats snapshots the repair controller; zero when chaos is
// disabled.
func (e *Engine) RepairStats() repair.Stats {
	if e.runtime == nil {
		return repair.Stats{}
	}
	return e.runtime.ctrl.Stats()
}

// watchAdmissionLocked registers a fresh admission with the failure
// runtime. Caller holds e.mu.
func (e *Engine) watchAdmissionLocked(req core.Request, placement core.Placement) {
	rt := e.runtime
	rt.injector.Watch(req.ID, req.VNF, req.Arrival, req.End(), watchedAssignments(placement))
	rt.slo.Register(req.ID, req.Reliability, placement.Availability(e.network, req), req.Duration)
}

// watchedAssignments is the instance footprint the failure model tracks
// for a placement: the assignments, plus — for shared placements — the
// pooled backup instance, so backup-cloudlet failures surface in each
// member's Alive set and trigger per-member re-placement (the group is
// re-placed member by member, with the pool releasing the dead group's
// row as the last member leaves).
func watchedAssignments(p core.Placement) []core.Assignment {
	if p.Backup == nil {
		return p.Assignments
	}
	out := make([]core.Assignment, 0, len(p.Assignments)+1)
	out = append(out, p.Assignments...)
	return append(out, core.Assignment{Cloudlet: p.Backup.Cloudlet, Instances: 1})
}

// finalizeExpiredLocked closes a placement's runtime accounts when its
// window ends. Caller holds e.mu.
func (e *Engine) finalizeExpiredLocked(id int) {
	rt := e.runtime
	rt.injector.Unwatch(id)
	alreadyDegraded := rt.ctrl.State(id) == repair.StateDegraded
	rt.ctrl.Forget(id)
	fin, ok := rt.slo.Finalize(id)
	if !ok {
		return
	}
	// Finalize degrades any account that ended below its requirement, so
	// every closed window either met its SLO or carries an explicit
	// degraded mark — and the trace says so, unless the repair controller
	// already emitted the degraded event for this placement.
	if fin.Degraded && !alreadyDegraded {
		e.recordRuntimeEvent(id, e.slot, trace.ReasonDegraded)
	}
}

// runtimeTickLocked advances the failure model by one slot: step the
// injector, feed the estimator, score every in-window placement, and
// repair the ones whose surviving footprint no longer meets their
// reliability target. Caller holds e.mu; the slot has already advanced
// and expired placements are already released and unwatched.
func (e *Engine) runtimeTickLocked() {
	rt := e.runtime
	// A fixed horizon ends: past slot T nothing can hold capacity, so the
	// failure model stops. A rolling window never ends.
	if !e.rolling && e.slot > e.horizon {
		return
	}
	rep := rt.injector.Step(e.slot)
	rt.slots.Add(1)
	for j, up := range rep.CloudletUp {
		rt.est.Observe(j, up)
	}
	for _, ph := range rep.Placements {
		rec, ok := e.placements[ph.ID]
		if !ok {
			continue
		}
		if rec.State == StateDegraded {
			// Past repairing: keep scoring delivered service only.
			rt.slo.ObserveSlot(ph.ID, ph.Up)
			continue
		}
		// Health is checked against the catalog rates the placement was
		// provisioned under: repair restores the promised redundancy. (The
		// estimator's learned rates are exported for observability and for
		// rebuilding schedulers, not for second-guessing live footprints.)
		_, meets := repair.MeetsPlacement(e.network, rec.Request, rec.Placement, ph.Alive, nil)
		act, opened := rt.ctrl.Observe(ph.ID, e.slot, meets)
		if opened {
			e.recordRuntimeEvent(ph.ID, e.slot, trace.ReasonFailed)
		}
		up := ph.Up
		if act == repair.ActionRepair {
			if e.repairLocked(rec) {
				latency := rt.ctrl.RepairSucceeded(ph.ID, e.slot)
				rt.slo.AddRepair(ph.ID, latency)
				e.recordRuntimeEvent(ph.ID, e.slot, trace.ReasonRepaired)
				// The re-placed instances come up within this slot.
				up = true
			} else if rt.ctrl.RepairFailed(ph.ID, e.slot) == repair.StateDegraded {
				rt.slo.MarkDegraded(ph.ID)
				rec.State = StateDegraded
				e.recordRuntimeEvent(ph.ID, e.slot, trace.ReasonDegraded)
			}
		}
		rt.slo.ObserveSlot(ph.ID, up)
	}
}

// repairLocked re-places one failed request through the normal admission
// pipeline: Propose against the live ledger, reserve the new footprint
// all-or-nothing, Commit the scheduler state, and only then release the
// old footprint (make-before-break — the new reservation must fit on top
// of the surviving one, so a refused repair leaves the books exactly as
// they were). The repair request keeps the original ID and payment (no
// revenue is re-counted) and covers the remaining window only. Caller
// holds e.mu; returns whether the re-placement landed.
func (e *Engine) repairLocked(rec *PlacementRecord) bool {
	rt := e.runtime
	end := rec.Request.End()
	req := rec.Request
	req.Arrival = e.slot
	req.Duration = end - e.slot + 1
	if req.Duration < 1 {
		return false
	}
	placement, ok := rt.tp.Propose(req, e.ledger)
	if !ok {
		return false
	}
	if err := placement.Validate(e.network, req); err != nil {
		rt.tp.Abort(req, placement)
		return false
	}
	demand := e.network.Catalog[req.VNF].Demand
	if !e.reserveAll(req, placement, demand) {
		rt.tp.Abort(req, placement)
		return false
	}
	rt.tp.Commit(req, placement)
	// The new footprint is booked; release the old one over its live
	// window. Release cannot fail on windows the engine reserved itself.
	oldDuration := end - rec.ReservedFrom + 1
	for _, a := range rec.Placement.Assignments {
		if err := e.ledger.Release(a.Cloudlet, rec.ReservedFrom, oldDuration, a.Units(demand)); err != nil {
			panic("serve: repair release: " + err.Error())
		}
	}
	if b := rec.Placement.Backup; b != nil {
		// Leaving the old backup group: the pool drops the group's row on
		// slots this member was the last to cover, so a group whose backup
		// cloudlet died dissolves as its members are re-placed.
		if err := e.pool.Release(b.Group, rec.ReservedFrom, oldDuration); err != nil {
			panic("serve: repair pooled release: " + err.Error())
		}
	}
	rec.Placement = placement
	rec.ReservedFrom = e.slot
	// Re-base the expiry index entry: the released old footprint no longer
	// pins the rolling window open, so the base may advance past it on the
	// next tick.
	e.expiry.Add(rec.ID, rec.ReservedFrom, end)
	rt.injector.Rewatch(rec.ID, watchedAssignments(placement))
	return true
}

// recordRuntimeEvent annotates a decision trace with a runtime outcome
// (failed/repaired/degraded). The record carries no attempts and no
// request metadata, so the store merges it into the resident trace and
// drops it if the decision was already evicted.
func (e *Engine) recordRuntimeEvent(id, slot int, reason trace.Reason) {
	if !e.rec.Sample(id) {
		return
	}
	e.rec.Record(&trace.DecisionTrace{Request: id, Slot: slot, Outcome: reason, Admitted: true})
}
