package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/onsite"
	"revnf/internal/repair"
	"revnf/internal/trace"
)

func newOnsiteScheduler(t *testing.T, n *core.Network, horizon int) *onsite.Scheduler {
	t.Helper()
	s, err := onsite.NewScheduler(n, horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func shutdownEngine(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func testInjector(t *testing.T, n *core.Network, rates []float64, seed int64) *chaos.Injector {
	t.Helper()
	inj, err := chaos.New(chaos.Config{
		Network:       n,
		CloudletMTTR:  2,
		InstanceMTTR:  2,
		CloudletRates: rates,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestChaosConfigValidation(t *testing.T) {
	n := testNetwork()
	inj := testInjector(t, n, nil, 1)

	// A scheduler without propose/commit cannot run repairs.
	_, err := New(Config{Network: n, Scheduler: plainScheduler{}, Horizon: 10, Chaos: inj})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("plain scheduler with chaos: err = %v, want ErrBadConfig", err)
	}

	// Cloudlet-count mismatch between injector and served network.
	small := &core.Network{
		Catalog:   n.Catalog,
		Cloudlets: n.Cloudlets[:1],
	}
	smallInj := testInjector(t, small, nil, 1)
	sched := newOnsiteScheduler(t, n, 10)
	_, err = New(Config{Network: n, Scheduler: sched, Horizon: 10, Chaos: smallInj})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("mismatched injector: err = %v, want ErrBadConfig", err)
	}
}

// TestRuntimeDisabledAccessors: a chaos-free engine reports the runtime
// as absent everywhere.
func TestRuntimeDisabledAccessors(t *testing.T) {
	e := newTestEngine(t, 10)
	if e.SLO() != nil || e.Estimator() != nil {
		t.Fatal("runtime accessors non-nil without chaos")
	}
	if st := e.RepairStats(); st != (repair.Stats{}) {
		t.Fatalf("RepairStats = %+v, want zero", st)
	}
	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "revnfd_chaos_slots_total") {
		t.Fatal("chaos metrics exposed without chaos")
	}
}

// TestRuntimeLifecycle drives an admission through watch, slot scoring,
// and finalize on a near-perfect fleet (no failures at seed 1 within the
// window), checking the SLO account and metrics wiring.
func TestRuntimeLifecycle(t *testing.T) {
	n := testNetwork()
	inj := testInjector(t, n, []float64{0.999999, 0.999999}, 1)
	store := trace.NewStore(64)
	sched := newOnsiteScheduler(t, n, 20)
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 20, Chaos: inj, Traces: store})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 3, Payment: 10})
	if !res.Admitted {
		t.Fatalf("not admitted: %+v", res)
	}
	entry, ok := e.SLO().Get(res.ID)
	if !ok || entry.Required != 0.9 || entry.WindowSlots != 3 {
		t.Fatalf("SLO account = %+v, %v", entry, ok)
	}
	if entry.Provisioned < 0.9 {
		t.Fatalf("provisioned %v below requirement", entry.Provisioned)
	}

	// Window [1,3]: ticks to slots 2 and 3 score slots 2 and 3; the tick
	// to slot 4 expires and finalizes (slot 1 predates the first tick, so
	// only 2 slots are observed).
	e.Tick()
	e.Tick()
	entry, _ = e.SLO().Get(res.ID)
	if entry.ObservedSlots != 2 || entry.Finalized {
		t.Fatalf("mid-window account = %+v", entry)
	}
	e.Tick()
	entry, _ = e.SLO().Get(res.ID)
	if !entry.Finalized || !entry.Met() || entry.Degraded {
		t.Fatalf("finalized account = %+v", entry)
	}
	// The rate estimator saw 3 slots per cloudlet on top of the prior.
	if obs := e.Estimator().Observations(0); obs != 4+3 {
		t.Fatalf("estimator observations = %v, want prior 4 + 3 slots", obs)
	}
	var sb strings.Builder
	if err := e.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"revnfd_chaos_slots_total 3",
		"revnfd_slo_met_total 1",
		"revnfd_slo_missed_total 0",
		"revnfd_estimated_reliability{cloudlet=\"0\"}",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRuntimeRepairsThroughPipeline forces total failure of the placed
// footprint (both cloudlets effectively always down) so every slot opens
// or continues an episode, and checks repairs flow through
// propose/reserve/commit and eventually degrade when the budget runs out
// — with the ledger balanced throughout.
func TestRuntimeRepairsThroughPipeline(t *testing.T) {
	n := testNetwork()
	// Cloudlets nearly always down: alive footprints empty, repairs land
	// (the pipeline still places — catalog rates are what the scheduler
	// sees) but the placement fails again next slot.
	inj := testInjector(t, n, []float64{0.02, 0.02}, 3)
	store := trace.NewStore(64)
	sched := newOnsiteScheduler(t, n, 30)
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 30, Chaos: inj, Traces: store, RepairAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 12, Payment: 100})
	if !res.Admitted {
		t.Fatalf("not admitted: %+v", res)
	}
	for slot := e.Slot(); slot < 14; slot = e.Tick().Slot {
		// Capacity conservation every slot: the ledger never goes negative
		// and never exceeds capacity, repairs included.
		for j := range n.Cloudlets {
			if r := e.ledger.Residual(j, e.Slot()); r < 0 || r > n.Cloudlets[j].Capacity {
				t.Fatalf("slot %d cloudlet %d residual %d out of [0,%d]", e.Slot(), j, r, n.Cloudlets[j].Capacity)
			}
		}
	}
	entry, ok := e.SLO().Get(res.ID)
	if !ok || !entry.Finalized {
		t.Fatalf("account not finalized: %+v, %v", entry, ok)
	}
	rs := e.RepairStats()
	if rs.Episodes == 0 {
		t.Fatal("no failure episodes under 2%-available cloudlets")
	}
	if entry.Met() && entry.Repairs == 0 {
		t.Fatalf("met with zero repairs under constant failure: %+v", entry)
	}
	if !entry.Met() && !entry.Degraded {
		t.Fatalf("missed SLO without degraded mark: %+v", entry)
	}
	// Trace carries the runtime annotations: final reason is one of the
	// runtime outcomes, and the admission attempts are preserved.
	dt, ok := store.Get(res.ID)
	if !ok {
		t.Fatal("trace missing")
	}
	switch dt.FinalReason() {
	case trace.ReasonFailed, trace.ReasonRepaired, trace.ReasonDegraded:
	default:
		t.Fatalf("final reason = %q, want a runtime outcome", dt.FinalReason())
	}
	if !dt.Admitted {
		t.Fatal("runtime events must preserve admitted status")
	}
	// After expiry everything is released: full residual at every slot.
	for j := range n.Cloudlets {
		for slot := 1; slot <= 30; slot++ {
			if r := e.ledger.Residual(j, slot); r != n.Cloudlets[j].Capacity {
				t.Fatalf("cloudlet %d slot %d residual %d after expiry, want %d", j, slot, r, n.Cloudlets[j].Capacity)
			}
		}
	}
}

// TestRuntimeDegradedState checks the degraded placement state is sticky
// and visible through Placement and the health endpoint data.
func TestRuntimeDegradedState(t *testing.T) {
	n := testNetwork()
	inj := testInjector(t, n, []float64{0.02, 0.02}, 5)
	// A scheduler that refuses everything after admission would be ideal;
	// instead exhaust a 1-attempt budget with a full network: admit two
	// placements consuming 8 of 10 units per cloudlet so repairs
	// (make-before-break, needing 4 more units) cannot reserve.
	sched := newOnsiteScheduler(t, n, 20)
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 20, Chaos: inj, RepairAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownEngine(t, e)

	ids := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		res := submit(t, e, AdmissionRequest{VNF: 0, Reliability: 0.9, Duration: 10, Payment: 100})
		if res.Admitted {
			ids = append(ids, res.ID)
		}
	}
	if len(ids) < 2 {
		t.Fatalf("admitted %d, want ≥ 2 to fill capacity", len(ids))
	}
	sawDegraded := false
	for slot := e.Slot(); slot < 11; slot = e.Tick().Slot {
	}
	for _, id := range ids {
		entry, ok := e.SLO().Get(id)
		if !ok {
			t.Fatalf("no account for %d", id)
		}
		if entry.Degraded {
			sawDegraded = true
		}
		if !entry.Met() && !entry.Degraded {
			t.Fatalf("placement %d missed SLO without degraded mark: %+v", id, entry)
		}
	}
	if !sawDegraded {
		t.Fatal("no placement degraded under always-down cloudlets and a full fleet")
	}
}
