package mip

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"revnf/internal/lp"
)

// knapsackProblem builds max Σ value·x s.t. Σ weight·x ≤ cap, x binary.
func knapsackProblem(t *testing.T, values, weights []float64, capacity float64) (*lp.Problem, []int) {
	t.Helper()
	n := len(values)
	p, err := lp.NewProblem(lp.Maximize, n)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	weightRow := map[int]float64{}
	binaries := make([]int, n)
	for i := 0; i < n; i++ {
		if err := p.SetObjectiveCoeff(i, values[i]); err != nil {
			t.Fatalf("SetObjectiveCoeff: %v", err)
		}
		if _, err := p.AddConstraint(map[int]float64{i: 1}, lp.LE, 1); err != nil {
			t.Fatalf("AddConstraint: %v", err)
		}
		weightRow[i] = weights[i]
		binaries[i] = i
	}
	if _, err := p.AddConstraint(weightRow, lp.LE, capacity); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
	return p, binaries
}

// bruteForceKnapsack enumerates all subsets.
func bruteForceKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestSolveKnapsackExact(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{3, 4, 2, 3, 1}
	p, bins := knapsackProblem(t, values, weights, 7)
	res, err := Solve(p, bins, Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Exact {
		t.Fatalf("Status = %v, want exact", res.Status)
	}
	want := bruteForceKnapsack(values, weights, 7)
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Errorf("Objective = %v, want %v", res.Objective, want)
	}
	if math.Abs(res.Bound-res.Objective) > 1e-6 {
		t.Errorf("Bound = %v, want %v at exactness", res.Bound, res.Objective)
	}
	// Solution must be binary and respect the knapsack.
	w := 0.0
	for i, x := range res.X {
		if math.Abs(x-math.Round(x)) > 1e-6 {
			t.Errorf("X[%d] = %v not integral", i, x)
		}
		w += weights[i] * x
	}
	if w > 7+1e-6 {
		t.Errorf("weight %v exceeds capacity", w)
	}
	if res.Gap() > 1e-9 {
		t.Errorf("Gap() = %v, want 0", res.Gap())
	}
}

func TestSolveInfeasible(t *testing.T) {
	p, err := lp.NewProblem(lp.Maximize, 1)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	_ = p.SetObjectiveCoeff(0, 1)
	_, _ = p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	_, _ = p.AddConstraint(map[int]float64{0: 1}, lp.GE, 2)
	res, err := Solve(p, []int{0}, Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Infeasible {
		t.Errorf("Status = %v, want infeasible", res.Status)
	}
	if !math.IsInf(res.Gap(), 1) {
		t.Errorf("Gap() = %v, want +Inf", res.Gap())
	}
}

// Integrality forced by branching: LP relaxation is fractional but the
// integer optimum requires excluding the fractional vertex.
func TestSolveFractionalRelaxation(t *testing.T) {
	// max x0 + x1 s.t. x0 + x1 ≤ 1.5 → LP gives 1.5, IP gives 1.
	p, err := lp.NewProblem(lp.Maximize, 2)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 1)
	_, _ = p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	_, _ = p.AddConstraint(map[int]float64{1: 1}, lp.LE, 1)
	_, _ = p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 1.5)
	res, err := Solve(p, []int{0, 1}, Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Exact || math.Abs(res.Objective-1) > 1e-6 {
		t.Errorf("got %v obj %v, want exact 1", res.Status, res.Objective)
	}
}

func TestSolveBudgetExceeded(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6}
	weights := []float64{3, 4, 2, 3, 1, 4, 2, 3}
	p, bins := knapsackProblem(t, values, weights, 10)
	res, err := Solve(p, bins, Config{MaxNodes: 1})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != BudgetExceeded && res.Status != NoIncumbent && res.Status != Exact {
		t.Fatalf("Status = %v", res.Status)
	}
	if res.Nodes > 1 {
		t.Errorf("Nodes = %d, want ≤ 1", res.Nodes)
	}
	// With any incumbent, bound must be at least the incumbent for a
	// maximization problem.
	if res.Status == BudgetExceeded && res.Bound < res.Objective-1e-9 {
		t.Errorf("Bound %v below incumbent %v", res.Bound, res.Objective)
	}
}

func TestSolveRelativeGapStopsEarly(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6, 11, 3}
	weights := []float64{3, 4, 2, 3, 1, 4, 2, 3, 5, 2}
	p, bins := knapsackProblem(t, values, weights, 12)
	exact, err := Solve(p, bins, Config{})
	if err != nil {
		t.Fatalf("Solve exact: %v", err)
	}
	loose, err := Solve(p, bins, Config{RelativeGap: 0.5})
	if err != nil {
		t.Fatalf("Solve loose: %v", err)
	}
	if loose.Nodes > exact.Nodes {
		t.Errorf("gapped search used more nodes (%d) than exact (%d)", loose.Nodes, exact.Nodes)
	}
	// Loose incumbent within 50% of the true optimum.
	if loose.Objective < exact.Objective*0.5-1e-9 {
		t.Errorf("loose objective %v too far below exact %v", loose.Objective, exact.Objective)
	}
}

func TestSolveInputErrors(t *testing.T) {
	if _, err := Solve(nil, nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil problem err = %v, want ErrBadInput", err)
	}
	p, _ := lp.NewProblem(lp.Maximize, 1)
	_ = p.SetObjectiveCoeff(0, 1)
	_, _ = p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	if _, err := Solve(p, []int{5}, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad binary index err = %v, want ErrBadInput", err)
	}
}

func TestSolveUnboundedRelaxation(t *testing.T) {
	p, _ := lp.NewProblem(lp.Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 1)
	// x0 bounded binary, x1 unbounded → relaxation unbounded.
	_, _ = p.AddConstraint(map[int]float64{0: 1}, lp.LE, 1)
	if _, err := Solve(p, []int{0}, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("unbounded relaxation err = %v, want ErrBadInput", err)
	}
}

func TestStatusString(t *testing.T) {
	if Exact.String() != "exact" || BudgetExceeded.String() != "budget-exceeded" ||
		Infeasible.String() != "infeasible" || NoIncumbent.String() != "no-incumbent" ||
		Status(9).String() == "" {
		t.Error("Status.String wrong")
	}
}

// Property: on random small knapsacks the branch-and-bound optimum matches
// subset enumeration exactly.
func TestSolveMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*20
			weights[i] = 1 + rng.Float64()*10
		}
		capacity := 5 + rng.Float64()*20
		p, bins := knapsackProblem(t, values, weights, capacity)
		res, err := Solve(p, bins, Config{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if res.Status != Exact {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		want := bruteForceKnapsack(values, weights, capacity)
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %v, brute force %v", trial, res.Objective, want)
		}
	}
}

// Property: with two coupled constraints (knapsack + cardinality), the
// solver still matches brute force.
func TestSolveCardinalityKnapsackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(7)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + rng.Float64()*15
			weights[i] = 1 + rng.Float64()*8
		}
		capacity := 4 + rng.Float64()*16
		maxCount := 1 + rng.Intn(n)
		p, bins := knapsackProblem(t, values, weights, capacity)
		countRow := map[int]float64{}
		for i := 0; i < n; i++ {
			countRow[i] = 1
		}
		if _, err := p.AddConstraint(countRow, lp.LE, float64(maxCount)); err != nil {
			t.Fatalf("AddConstraint: %v", err)
		}
		res, err := Solve(p, bins, Config{})
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		// Brute force with cardinality.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			v, w, cnt := 0.0, 0.0, 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					w += weights[i]
					cnt++
				}
			}
			if w <= capacity && cnt <= maxCount && v > best {
				best = v
			}
		}
		if res.Status != Exact || math.Abs(res.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: got %v/%v, brute force %v", trial, res.Status, res.Objective, best)
		}
	}
}

func TestSolveWarmStart(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{3, 4, 2, 3, 1}
	p, bins := knapsackProblem(t, values, weights, 7)
	// Feasible warm start: items 0 and 2 (weight 5 ≤ 7, value 17).
	warm := []float64{1, 0, 1, 0, 0}
	res, err := Solve(p, bins, Config{MaxNodes: 1, WarmStart: warm})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Objective < 17-1e-9 {
		t.Errorf("warm-started incumbent %v below warm start value 17", res.Objective)
	}
	if res.Status == NoIncumbent {
		t.Error("warm start ignored: NoIncumbent")
	}
	// Invalid warm starts must be rejected loudly.
	if _, err := Solve(p, bins, Config{WarmStart: []float64{1}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short warm start err = %v", err)
	}
	if _, err := Solve(p, bins, Config{WarmStart: []float64{0.5, 0, 0, 0, 0}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("fractional warm start err = %v", err)
	}
	if _, err := Solve(p, bins, Config{WarmStart: []float64{1, 1, 1, 1, 1}}); !errors.Is(err, ErrBadInput) {
		t.Errorf("infeasible warm start err = %v", err)
	}
}
