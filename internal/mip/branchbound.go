// Package mip solves 0/1 mixed-integer programs by best-first branch and
// bound over the internal/lp simplex relaxation. Together with internal/lp
// it is the from-scratch substitute for the CPLEX optimizer the paper uses
// to compute offline optima: exact when the search closes the gap within
// its node budget, and otherwise reporting both the best incumbent and the
// best relaxation bound so the caller can bracket the optimum.
package mip

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"revnf/internal/lp"
)

// Errors returned by Solve.
var (
	ErrBadInput = errors.New("mip: invalid input")
)

// intEps is the tolerance within which a relaxation value counts as
// integral.
const intEps = 1e-6

// Status classifies a branch-and-bound outcome.
type Status int

// Solve outcomes.
const (
	// Exact means the incumbent is a proven optimum.
	Exact Status = iota + 1
	// BudgetExceeded means the node budget ran out; Objective is the best
	// feasible value found and Bound brackets the true optimum.
	BudgetExceeded
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// NoIncumbent means the budget ran out before any integer-feasible
	// point was found; only Bound is meaningful.
	NoIncumbent
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Exact:
		return "exact"
	case BudgetExceeded:
		return "budget-exceeded"
	case Infeasible:
		return "infeasible"
	case NoIncumbent:
		return "no-incumbent"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Config tunes the search.
type Config struct {
	// MaxNodes caps the number of relaxations solved; 0 selects 20000.
	MaxNodes int
	// RelativeGap stops the search early when the incumbent is within
	// this fraction of the bound (e.g. 0.001 = 0.1%).
	RelativeGap float64
	// WarmStart optionally seeds the incumbent with a known feasible
	// point (length NumVars, binaries integral). An invalid warm start is
	// an error: it means the caller's heuristic and the model disagree,
	// which should never be silent.
	WarmStart []float64
}

func (c Config) maxNodes() int {
	if c.MaxNodes <= 0 {
		return 20000
	}
	return c.MaxNodes
}

// Result is the outcome of a solve.
type Result struct {
	// Status classifies the outcome.
	Status Status
	// Objective is the incumbent's objective (valid unless NoIncumbent or
	// Infeasible).
	Objective float64
	// Bound is the best relaxation bound: an upper bound for maximization
	// problems and a lower bound for minimization.
	Bound float64
	// X is the incumbent point over the structural variables.
	X []float64
	// Nodes counts the relaxations solved.
	Nodes int
}

// Gap returns the relative optimality gap |Bound-Objective|/max(1,|Objective|),
// or +Inf when there is no incumbent.
func (r Result) Gap() float64 {
	if r.Status == NoIncumbent || r.Status == Infeasible {
		return math.Inf(1)
	}
	return math.Abs(r.Bound-r.Objective) / math.Max(1, math.Abs(r.Objective))
}

// node is one subproblem: a set of 0/1 fixings and the parent's bound used
// for best-first ordering.
type node struct {
	fixes map[int]int
	bound float64
}

type nodeQueue struct {
	items  []*node
	better func(a, b float64) bool
}

func (q *nodeQueue) Len() int           { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool { return q.better(q.items[i].bound, q.items[j].bound) }
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// Solve runs branch and bound on the problem, treating the variables in
// binaries as 0/1. Every binary variable must already carry an x ≤ 1
// constraint (or be otherwise bounded) in the relaxation; Solve adds only
// the branching fixings.
func Solve(base *lp.Problem, binaries []int, cfg Config) (*Result, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: nil problem", ErrBadInput)
	}
	for _, v := range binaries {
		if v < 0 || v >= base.NumVars() {
			return nil, fmt.Errorf("%w: binary variable %d of %d", ErrBadInput, v, base.NumVars())
		}
	}
	maximize := base.Sense() == lp.Maximize
	better := func(a, b float64) bool { return a < b }
	if maximize {
		better = func(a, b float64) bool { return a > b }
	}
	improves := func(bound, incumbent float64) bool {
		if maximize {
			return bound > incumbent+1e-9
		}
		return bound < incumbent-1e-9
	}

	binSet := make(map[int]bool, len(binaries))
	for _, v := range binaries {
		binSet[v] = true
	}
	sortedBins := append([]int(nil), binaries...)
	sort.Ints(sortedBins)

	result := &Result{Status: NoIncumbent}
	incumbent := math.Inf(-1)
	if !maximize {
		incumbent = math.Inf(1)
	}
	haveIncumbent := false
	rootBound := math.Inf(1)
	if !maximize {
		rootBound = math.Inf(-1)
	}

	queue := &nodeQueue{better: better}
	heap.Init(queue)
	heap.Push(queue, &node{fixes: map[int]int{}, bound: rootBound})

	updateIncumbent := func(obj float64, x []float64) {
		if !haveIncumbent || improves(obj, incumbent) {
			haveIncumbent = true
			incumbent = obj
			result.X = append(result.X[:0], x...)
		}
	}

	// bestOutstanding returns the strongest valid global bound: the best
	// open-node bound, or the incumbent when the queue is empty.
	bestOutstanding := func() float64 {
		best := math.NaN()
		for _, it := range queue.items {
			if math.IsInf(it.bound, 0) {
				continue
			}
			if math.IsNaN(best) || improves(it.bound, best) {
				best = it.bound
			}
		}
		if math.IsNaN(best) {
			return incumbent
		}
		if haveIncumbent && improves(incumbent, best) {
			return incumbent
		}
		return best
	}

	if cfg.WarmStart != nil {
		if len(cfg.WarmStart) != base.NumVars() {
			return nil, fmt.Errorf("%w: warm start has %d entries, want %d", ErrBadInput, len(cfg.WarmStart), base.NumVars())
		}
		for _, v := range sortedBins {
			if math.Abs(cfg.WarmStart[v]-math.Round(cfg.WarmStart[v])) > intEps {
				return nil, fmt.Errorf("%w: warm start fractional at binary %d", ErrBadInput, v)
			}
		}
		if !base.Feasible(cfg.WarmStart, 1e-6) {
			return nil, fmt.Errorf("%w: warm start infeasible", ErrBadInput)
		}
		obj, err := base.Objective(cfg.WarmStart)
		if err != nil {
			return nil, fmt.Errorf("%w: warm start: %v", ErrBadInput, err)
		}
		updateIncumbent(obj, cfg.WarmStart)
	}

	exhausted := false
	for queue.Len() > 0 {
		if result.Nodes >= cfg.maxNodes() {
			exhausted = true
			break
		}
		nd := heap.Pop(queue).(*node)
		// Bound-based pruning against the current incumbent.
		if haveIncumbent && !math.IsInf(nd.bound, 0) && !improves(nd.bound, incumbent) {
			continue
		}
		rel := base.Clone()
		if err := applyFixes(rel, nd.fixes); err != nil {
			return nil, err
		}
		sol, err := rel.Solve()
		if err != nil {
			return nil, fmt.Errorf("mip: node relaxation: %w", err)
		}
		result.Nodes++
		if sol.Status == lp.Infeasible {
			continue
		}
		if sol.Status == lp.Unbounded {
			return nil, fmt.Errorf("%w: relaxation unbounded; bound every variable", ErrBadInput)
		}
		if result.Nodes == 1 {
			result.Bound = sol.Objective
		}
		if haveIncumbent && !improves(sol.Objective, incumbent) {
			continue
		}
		frac := mostFractional(sol.X, sortedBins)
		if frac < 0 {
			// Integer feasible: snap values and accept.
			x := append([]float64(nil), sol.X...)
			for _, v := range sortedBins {
				x[v] = math.Round(x[v])
			}
			updateIncumbent(sol.Objective, x)
			if cfg.RelativeGap > 0 && gapWithin(incumbent, bestOutstanding(), cfg.RelativeGap) {
				exhausted = false
				break
			}
			continue
		}
		// Rounding heuristic for an early incumbent.
		if !haveIncumbent {
			if x, obj, ok := tryRound(base, sol.X, sortedBins); ok {
				updateIncumbent(obj, x)
			}
		}
		for _, val := range [2]int{roundDir(sol.X[frac]), 1 - roundDir(sol.X[frac])} {
			child := &node{fixes: make(map[int]int, len(nd.fixes)+1), bound: sol.Objective}
			for k, v := range nd.fixes {
				child.fixes[k] = v
			}
			child.fixes[frac] = val
			heap.Push(queue, child)
		}
	}

	if haveIncumbent || queue.Len() > 0 {
		result.Bound = bestOutstanding()
	}
	// The budget may run out with open nodes whose bounds cannot beat the
	// incumbent anyway (beyond simplex-level numerical noise): that is a
	// proven optimum, not a truncation.
	if exhausted && haveIncumbent && gapWithin(incumbent, result.Bound, 1e-7) {
		exhausted = false
	}
	switch {
	case haveIncumbent && !exhausted:
		// The queue drained (or the gap target was hit): the incumbent is
		// optimal (to within RelativeGap when one was set).
		result.Status = Exact
		result.Objective = incumbent
		if queue.Len() == 0 {
			result.Bound = incumbent
		}
	case haveIncumbent:
		result.Status = BudgetExceeded
		result.Objective = incumbent
	case !exhausted:
		result.Status = Infeasible
	default:
		result.Status = NoIncumbent
	}
	return result, nil
}

func applyFixes(p *lp.Problem, fixes map[int]int) error {
	for v, val := range fixes {
		rel, rhs := lp.LE, 0.0
		if val == 1 {
			rel, rhs = lp.GE, 1.0
		}
		if _, err := p.AddConstraint(map[int]float64{v: 1}, rel, rhs); err != nil {
			return fmt.Errorf("mip: fixing variable %d: %w", v, err)
		}
	}
	return nil
}

// mostFractional returns the binary variable whose relaxation value is
// farthest from an integer, or -1 when all are integral.
func mostFractional(x []float64, binaries []int) int {
	best, bestDist := -1, intEps
	for _, v := range binaries {
		dist := math.Abs(x[v] - math.Round(x[v]))
		if dist > bestDist {
			best, bestDist = v, dist
		}
	}
	return best
}

func roundDir(v float64) int {
	if v >= 0.5 {
		return 1
	}
	return 0
}

// tryRound rounds the fractional relaxation point to 0/1 on the binaries
// and accepts it when it is feasible for the base problem.
func tryRound(base *lp.Problem, x []float64, binaries []int) ([]float64, float64, bool) {
	rounded := append([]float64(nil), x...)
	for _, v := range binaries {
		rounded[v] = math.Round(rounded[v])
	}
	if !base.Feasible(rounded, 1e-7) {
		return nil, 0, false
	}
	obj, err := base.Objective(rounded)
	if err != nil {
		return nil, 0, false
	}
	return rounded, obj, true
}

func gapWithin(incumbent, bound, gap float64) bool {
	if math.IsInf(bound, 0) {
		return false
	}
	return math.Abs(bound-incumbent) <= gap*math.Max(1, math.Abs(incumbent))
}
