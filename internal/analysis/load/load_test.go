package load_test

import (
	"go/importer"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"revnf/internal/analysis/load"
)

// writeModule materializes a throwaway module in a temp dir: files maps
// relative paths to contents. Returns the module root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module loadtest\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestPackagesNoTestFiles loads a package that has no *_test.go files at
// all — the everyday case for the analyzers' targets — and checks the
// full parse + type-check pipeline comes back populated.
func TestPackagesNoTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n\n// Double doubles.\nfunc Double(x int) int { return 2 * x }\n",
	})
	pkgs, err := load.Packages(dir, "./a")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "loadtest/a" {
		t.Errorf("Path = %q, want %q", p.Path, "loadtest/a")
	}
	if len(p.Files) != 1 {
		t.Errorf("got %d files, want 1", len(p.Files))
	}
	if p.Types == nil || p.Types.Scope().Lookup("Double") == nil {
		t.Error("type-checked package missing Double")
	}
	if p.Info == nil || len(p.Info.Defs) == 0 {
		t.Error("Info.Defs empty; type-check info not collected")
	}
}

// TestPackagesStdlibOnlyImports exercises the export-data importer on a
// package whose entire dependency closure is the standard library: go
// list -export must surface export files for the deps and the importer
// must resolve them (no source for stdlib is ever parsed).
func TestPackagesStdlibOnlyImports(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"b/b.go": `package b

import (
	"fmt"
	"strings"
)

// Shout upper-cases and decorates s.
func Shout(s string) string { return fmt.Sprintf("%s!", strings.ToUpper(s)) }
`,
	})
	pkgs, err := load.Packages(dir, "./...")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d target packages, want 1 (stdlib deps must stay DepOnly)", len(pkgs))
	}
	p := pkgs[0]
	// The importer must have materialized real stdlib packages, not stubs:
	// strings.ToUpper's use resolves to an object owned by package strings.
	found := false
	for _, obj := range p.Info.Uses {
		if obj.Pkg() != nil && obj.Pkg().Path() == "strings" && obj.Name() == "ToUpper" {
			found = true
			break
		}
	}
	if !found {
		t.Error("strings.ToUpper not resolved through export data")
	}
}

// TestPackagesIgnoresTestFiles pins the loader contract that test files
// are never loaded: a package carrying *_test.go files yields only its
// GoFiles, so invariants are not enforced on tests.
func TestPackagesIgnoresTestFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"c/c.go":      "package c\n\nfunc C() int { return 1 }\n",
		"c/c_test.go": "package c\n\nimport \"testing\"\n\nfunc TestC(t *testing.T) { _ = C() }\n",
	})
	pkgs, err := load.Packages(dir, "./c")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("got %d files, want 1 (c_test.go must not be loaded)", n)
	}
	for _, f := range pkgs[0].Files {
		if name := pkgs[0].Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			t.Errorf("test file leaked into load: %s", name)
		}
	}
}

// TestPackagesTypeError feeds the loader a package that does not
// type-check. The contract is a diagnostic error naming the problem —
// never a panic, and never a half-populated package.
func TestPackagesTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad/bad.go": "package bad\n\nfunc Broken() int { return \"not an int\" }\n",
	})
	pkgs, err := load.Packages(dir, "./bad")
	if err == nil {
		t.Fatalf("Packages succeeded on a type-broken package: %+v", pkgs)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error does not identify the broken package: %v", err)
	}
}

// TestPackagesSyntaxError does the same for a parse failure.
func TestPackagesSyntaxError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"mangled/mangled.go": "package mangled\n\nfunc Unclosed( {\n",
	})
	if _, err := load.Packages(dir, "./mangled"); err == nil {
		t.Fatal("Packages succeeded on a syntactically broken package")
	}
}

// TestGoListBadPattern pins the error path for a pattern matching
// nothing loadable.
func TestGoListBadPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"a/a.go": "package a\n",
	})
	if _, err := load.GoList(dir, "./no/such/dir/..."); err == nil {
		t.Fatal("GoList succeeded on a nonexistent pattern")
	}
}

// TestCheckTypeError drives Check directly with a self-contained file
// whose body fails the type checker, bypassing the go tool: the error
// must carry the "typecheck" stage and the import path.
func TestCheckTypeError(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "x.go")
	src := "package x\n\nvar V int = true\n"
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	_, err := load.Check(fset, importer.Default(), "loadtest/x", dir, []string{name})
	if err == nil {
		t.Fatal("Check succeeded on a type-broken file")
	}
	if !strings.Contains(err.Error(), "typecheck") || !strings.Contains(err.Error(), "loadtest/x") {
		t.Errorf("error missing stage or path: %v", err)
	}
}
