// Package load type-checks Go packages for the revnfvet analyzers without
// depending on golang.org/x/tools/go/packages (unavailable in this
// hermetic build). It shells out to `go list -export -deps -json`, which
// compiles every dependency into the build cache and reports the export
// data file per package, then parses the target packages from source and
// type-checks them with go/types using a gc-export-data importer — the
// same layering go/packages uses in LoadTypes mode.
//
// Only non-test files (GoFiles) are loaded: the revnfvet invariants govern
// library code, and tests are exempt from all of them by design.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the on-disk package directory.
	Dir string
	// Fset, Files, Types, Info are the parse and type-check results.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ListedPackage is the subset of `go list -json` output the loader needs.
type ListedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// GoList runs `go list -export -deps -json` in dir and decodes the stream.
// The -export flag makes the go tool compile every listed package into the
// build cache and report the export data file location.
func GoList(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(&out)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decode go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex resolves import paths to gc export data files.
type exportIndex map[string]string

func buildIndex(pkgs []ListedPackage) exportIndex {
	idx := make(exportIndex, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
		// ImportMap entries (vendoring, test variants) alias the source
		// spelling to the resolved package; record both spellings.
		for from, to := range p.ImportMap {
			if idx[from] == "" {
				if e := idx[to]; e != "" {
					idx[from] = e
				}
			}
		}
	}
	return idx
}

func (idx exportIndex) lookup(path string) (io.ReadCloser, error) {
	file, ok := idx[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// NewExportImporter builds a go/types importer that reads compiler export
// data for every package in listed (typically the output of GoList with
// -deps, so the whole dependency closure is covered).
func NewExportImporter(fset *token.FileSet, listed []ListedPackage) types.Importer {
	return importer.ForCompiler(fset, "gc", buildIndex(listed).lookup)
}

// Packages loads and type-checks every target package (the non-DepOnly
// packages matched by patterns) relative to dir. Dependencies, including
// the standard library, are consumed as compiler export data, so loading
// is fast and the target sources are the only code parsed.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, listed)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []string
		for _, name := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, name))
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Check parses the given source files and type-checks them as the package
// at the given import path, resolving imports through imp.
func Check(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
