// Package framework is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository's invariant
// checkers. It exists because the build environment is hermetic (no module
// proxy), so the real x/tools module cannot be fetched; the API mirrors
// the upstream shape — an Analyzer owning a Run function over a Pass —
// closely enough that migrating to x/tools later is a mechanical import
// swap.
//
// Differences from upstream, all deliberate simplifications:
//
//   - no Requires/ResultOf fact plumbing — the five revnfvet analyzers are
//     independent single-package passes;
//   - no SuggestedFixes — revnfvet only reports;
//   - a built-in, uniform escape hatch: a "//lint:allow <name>" comment on
//     the flagged line, or on the line directly above it, suppresses that
//     analyzer's diagnostics for the line (upstream leaves suppression to
//     drivers).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:allow
	// comments. It must be a valid identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report/Reportf and returns an error only for analyzer-internal
	// failures (not for findings).
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass provides one analyzed package to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the currently running analyzer.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees (non-test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds type information for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the violated invariant.
	Message string
	// Analyzer is filled in by the runner.
	Analyzer string
}

// Finding is a positioned diagnostic as returned by Run.
type Finding struct {
	// Position is the resolved file:line:column.
	Position token.Position
	// Message and Analyzer mirror the Diagnostic.
	Message  string
	Analyzer string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// Unit is the input to Run: one type-checked package.
type Unit struct {
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed (non-test) sources.
	Files []*ast.File
	// Pkg and Info are the type-check results.
	Pkg  *types.Package
	Info *types.Info
}

var allowRe = regexp.MustCompile(`//\s*lint:allow\s+([A-Za-z0-9_,\s]+)`)

// allowedLines maps "file:line" to the set of analyzer names suppressed on
// that line (a comment suppresses its own line and the next).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	add := func(pos token.Position, names []string) {
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		set := out[key]
		if set == nil {
			set = make(map[string]bool)
			out[key] = set
		}
		for _, n := range names {
			if n = strings.TrimSpace(n); n != "" {
				set[n] = true
			}
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				names := strings.Split(strings.ReplaceAll(m[1], ",", " "), " ")
				pos := fset.Position(c.Pos())
				add(pos, names)
				add(token.Position{Filename: pos.Filename, Line: pos.Line + 1}, names)
			}
		}
	}
	return out
}

// Run applies every analyzer to every unit, filters lint:allow-suppressed
// findings, and returns the rest sorted by position. The error aggregates
// analyzer-internal failures; findings alone never produce an error.
func Run(units []*Unit, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	var errs []string
	for _, u := range units {
		allowed := allowedLines(u.Fset, u.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := u.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if allowed[key][a.Name] {
					return
				}
				findings = append(findings, Finding{Position: pos, Message: d.Message, Analyzer: a.Name})
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s on %s: %v", a.Name, u.Pkg.Path(), err))
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if len(errs) > 0 {
		return findings, fmt.Errorf("analysis failures:\n  %s", strings.Join(errs, "\n  "))
	}
	return findings, nil
}
