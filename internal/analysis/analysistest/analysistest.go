// Package analysistest runs a framework.Analyzer over fixture packages and
// checks its diagnostics against "// want" comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	testdata/src/<importpath>/*.go
//
// A fixture line that should be flagged carries a trailing comment
//
//	x := rand.Intn(3) // want `rand\.Intn`
//
// holding one or more Go-quoted regular expressions, each of which must
// match a distinct diagnostic reported on that line; diagnostics on lines
// with no matching want pattern fail the test, as do want patterns with no
// matching diagnostic.
//
// Fixture packages may import each other by the path of their directory
// under testdata/src — including stub packages that impersonate real
// repository packages (for example a stub "revnf/internal/core" declaring
// just the TwoPhaseScheduler interface) — and may import anything else
// resolvable by the module's go tool (the standard library, or real
// repository packages). testdata/src takes precedence, exactly like the
// GOPATH the upstream harness fabricates.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"revnf/internal/analysis/framework"
	"revnf/internal/analysis/load"
)

// Run loads each fixture package below dir/src, applies the analyzer, and
// reports expectation mismatches through t.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "src")
	imp, err := newFixtureImporter(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgPaths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Fatalf("analysistest: load fixture %q: %v", path, err)
		}
		unit := &framework.Unit{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
		findings, err := framework.Run([]*framework.Unit{unit}, []*framework.Analyzer{a})
		if err != nil {
			t.Errorf("analysistest: %s on %q: %v", a.Name, path, err)
		}
		checkExpectations(t, pkg, findings)
	}
}

// fixtureImporter resolves fixture packages from testdata/src and
// everything else through export data produced by the module's go tool.
type fixtureImporter struct {
	srcRoot  string
	fset     *token.FileSet
	external types.Importer
	cache    map[string]*load.Package
	loading  map[string]bool
}

// newFixtureImporter scans the fixture tree for imports that testdata/src
// cannot satisfy and resolves their export data in one go list call.
func newFixtureImporter(srcRoot string) (*fixtureImporter, error) {
	fi := &fixtureImporter{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		cache:   make(map[string]*load.Package),
		loading: make(map[string]bool),
	}
	ext, err := fi.externalImports()
	if err != nil {
		return nil, err
	}
	var listed []load.ListedPackage
	if len(ext) > 0 {
		// The working directory of a test binary is its package directory,
		// which lies inside the module, so the go tool resolves both
		// standard library and module-internal import paths.
		listed, err = load.GoList(".", ext...)
		if err != nil {
			return nil, err
		}
	}
	fi.external = load.NewExportImporter(fi.fset, listed)
	return fi, nil
}

// externalImports parses every fixture file and returns the import paths
// that have no directory under testdata/src.
func (fi *fixtureImporter) externalImports() ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.Walk(fi.srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parse %s: %v", path, err)
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(fi.srcRoot, p)); err == nil && st.IsDir() {
				continue // fixture-local package
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// load type-checks the fixture package at the given testdata/src-relative
// import path, memoized.
func (fi *fixtureImporter) load(path string) (*load.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	if fi.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	fi.loading[path] = true
	defer delete(fi.loading, path)
	dir := filepath.Join(fi.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg, err := load.Check(fi.fset, fi, path, dir, files)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: testdata/src first, export data after.
func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(fi.srcRoot, path)); err == nil && st.IsDir() {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.external.Import(path)
}

// expectation is one want pattern at a fixture line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the want patterns of one fixture file, by line.
func parseWants(filename string) (map[int][]*expectation, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	out := make(map[int][]*expectation)
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		rest := strings.TrimSpace(m[1])
		for rest != "" {
			var quoted string
			switch rest[0] {
			case '"':
				end := strings.Index(rest[1:], `"`)
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want pattern", filename, i+1)
				}
				quoted = rest[:end+2]
			case '`':
				end := strings.Index(rest[1:], "`")
				if end < 0 {
					return nil, fmt.Errorf("%s:%d: unterminated want pattern", filename, i+1)
				}
				quoted = rest[:end+2]
			default:
				return nil, fmt.Errorf("%s:%d: malformed want pattern %q", filename, i+1, rest)
			}
			rest = strings.TrimSpace(rest[len(quoted):])
			pattern, err := strconv.Unquote(quoted)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: unquote %s: %v", filename, i+1, quoted, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want regexp: %v", filename, i+1, err)
			}
			out[i+1] = append(out[i+1], &expectation{re: re})
		}
	}
	return out, nil
}

// checkExpectations compares findings against the fixture's want comments.
func checkExpectations(t *testing.T, pkg *load.Package, findings []framework.Finding) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		w, err := parseWants(name)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants[name] = w
	}
	for _, f := range findings {
		exps := wants[f.Position.Filename][f.Position.Line]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(f.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, e.re)
				}
			}
		}
	}
}
