// Package atomicword enforces all-or-nothing atomicity per field: a field
// the package treats atomically anywhere must be accessed atomically
// everywhere.
//
// Invariant: mixed plain/atomic access to one memory word is a data race
// even when the plain side "only reads" — the race detector calls it, the
// memory model gives it no meaning, and on the serving stack's hottest
// words (the timeslot ledger's packed geometry, the engine's rejection
// and in-flight counters, the ingest totals) a torn or stale read
// corrupts admission accounting silently. The pass freezes the rule the
// code already follows:
//
//   - a field declared with one of sync/atomic's types (atomic.Bool,
//     atomic.Int32/Int64, atomic.Uint32/Uint64, atomic.Uintptr,
//     atomic.Pointer[T], atomic.Value) may only be used as the receiver
//     of its own method set (x.f.Load(), x.f.Store(v), ...). Copying it,
//     assigning to it, or taking its address for anything but a method
//     call bypasses the atomic API and is flagged;
//   - a plain-typed field that is passed by address to any sync/atomic
//     package function (atomic.AddUint64(&x.f, 1), ...) anywhere in the
//     package becomes atomic for the whole package: every access outside
//     a sync/atomic call argument is flagged.
//
// The unit of reasoning is the field (all instances of the struct), per
// package: cross-package aliasing is out of scope, matching the repo's
// convention that a struct's atomics are touched only by its own package.
package atomicword

import (
	"go/ast"
	"go/token"
	"go/types"

	"revnf/internal/analysis/astq"
	"revnf/internal/analysis/framework"
)

// Analyzer is the atomicword pass.
var Analyzer = &framework.Analyzer{
	Name: "atomicword",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere (no mixed plain/atomic access)",
	Run:  run,
}

// atomicTypes is sync/atomic's typed-word set.
var atomicTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicType reports whether t is one of sync/atomic's named types
// (not behind a pointer: a *atomic.Uint64 field shares the word safely).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// Instantiated atomic.Pointer[T] is a *types.Named too; aliases
		// resolve through Underlying only for non-named, so stop here.
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypes[obj.Name()]
}

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, blessed: make(map[*ast.SelectorExpr]bool), fnAtomic: make(map[*types.Var]token.Pos)}
	// Pass 1: find fields passed by address into sync/atomic functions and
	// bless those argument occurrences.
	for _, file := range pass.Files {
		ast.Inspect(file, c.collectAtomicCalls)
	}
	// Pass 2: flag every unblessed use of an atomic field — plain uses of
	// function-atomic fields, non-method uses of atomic-typed fields.
	for _, file := range pass.Files {
		c.checkFile(file)
	}
	return nil
}

type checker struct {
	pass *framework.Pass
	// fnAtomic maps fields made atomic by a sync/atomic call somewhere in
	// the package to one representative call position (for the message).
	fnAtomic map[*types.Var]token.Pos
	// blessed marks field selectors appearing as &-arguments of
	// sync/atomic calls: the atomic accesses themselves.
	blessed map[*ast.SelectorExpr]bool
}

// collectAtomicCalls records fields whose address flows into a
// sync/atomic function call.
func (c *checker) collectAtomicCalls(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := astq.PkgFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return true
	}
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			continue
		}
		if _, seen := c.fnAtomic[v]; !seen {
			c.fnAtomic[v] = call.Pos()
		}
		c.blessed[sel] = true
	}
	return true
}

// checkFile walks one file with enough parent context to distinguish
// method-receiver uses (x.f.Load()) from plain uses.
func (c *checker) checkFile(file *ast.File) {
	// parentSel[child] is the selector whose X is child: for x.f.Load,
	// parentSel[x.f] is the x.f.Load selector.
	parentSel := make(map[ast.Expr]*ast.SelectorExpr)
	ast.Inspect(file, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			parentSel[ast.Unparen(sel.X)] = sel
		}
		return true
	})
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		if pos, isFn := c.fnAtomic[v]; isFn {
			if !c.blessed[sel] {
				c.pass.Reportf(sel.Pos(),
					"plain access to %s, which is accessed via sync/atomic at %s; mixed plain/atomic access races",
					v.Name(), c.pass.Fset.Position(pos))
			}
			return true
		}
		if !isAtomicType(v.Type()) {
			return true
		}
		// A declared atomic type may only be the receiver of its own
		// method set: x.f.Load(), x.f.Store(v), ...
		if p, ok := parentSel[sel]; ok {
			if _, isMethod := c.pass.TypesInfo.Selections[p]; isMethod {
				return true
			}
		}
		c.pass.Reportf(sel.Pos(),
			"non-atomic use of %s (%s): copying, assigning, or aliasing an atomic value bypasses its method set",
			v.Name(), v.Type())
		return true
	})
}
