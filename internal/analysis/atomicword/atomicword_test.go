package atomicword_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/atomicword"
)

func TestAtomicword(t *testing.T) {
	analysistest.Run(t, "testdata", atomicword.Analyzer, "aw", "awclean")
}
