// Package aw exercises the atomicword invariant: flagged mixed
// plain/atomic accesses.
package aw

import "sync/atomic"

// Counters mixes plain and atomic access to plain-typed words: hits is
// atomic (Hit uses AddUint64), so every plain touch of it races.
type Counters struct {
	hits   uint64
	misses uint64 // never touched atomically: plain access is fine
}

// Hit makes hits an atomic field for the whole package.
func (c *Counters) Hit() {
	atomic.AddUint64(&c.hits, 1)
}

// Hits loads atomically: accepted.
func (c *Counters) Hits() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// Sloppy reads the atomic word plainly: flagged.
func (c *Counters) Sloppy() uint64 {
	return c.hits // want `plain access to hits, which is accessed via sync/atomic at`
}

// Reset writes the atomic word plainly: flagged. The never-atomic
// sibling stays clean.
func (c *Counters) Reset() {
	c.hits = 0 // want `plain access to hits, which is accessed via sync/atomic at`
	c.misses = 0
}

// Geom mimics the ledger's packed word: declared atomic types may only
// be receivers of their own method set.
type Geom struct {
	word atomic.Uint64
	ok   atomic.Bool
}

// Load and Set go through the method set: accepted.
func (g *Geom) Load() uint64 { return g.word.Load() }
func (g *Geom) Set(v uint64) { g.word.Store(v) }
func (g *Geom) Mark()        { g.ok.Store(true) }
func (g *Geom) Marked() bool { return g.ok.Load() }

// Copy copies the atomic value out: flagged.
func (g *Geom) Copy() atomic.Uint64 {
	return g.word // want `non-atomic use of word`
}

// Alias leaks the word's address outside the method set: flagged.
func (g *Geom) Alias() *atomic.Uint64 {
	return &g.word // want `non-atomic use of word`
}

// Clobber overwrites the whole atomic value: flagged.
func (g *Geom) Clobber() {
	g.word = atomic.Uint64{} // want `non-atomic use of word`
}

// Grab copies the bool: flagged.
func (g *Geom) Grab() atomic.Bool {
	return g.ok // want `non-atomic use of ok`
}
