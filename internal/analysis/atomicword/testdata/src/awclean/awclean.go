// Package awclean is the non-flagging atomicword suite: every atomic
// field is accessed atomically everywhere, so the analyzer must stay
// silent.
package awclean

import "sync/atomic"

// Stats mirrors the engine's counter block: function-atomic plain
// words, declared atomic types, and plain config living side by side.
type Stats struct {
	total uint64 // always via sync/atomic functions
	limit uint64 // always plain: immutable config

	geom atomic.Uint64
	open atomic.Bool
}

// Inc and Total consistently use the sync/atomic functions.
func (s *Stats) Inc()          { atomic.AddUint64(&s.total, 1) }
func (s *Stats) Total() uint64 { return atomic.LoadUint64(&s.total) }

// Swap exercises the wider sync/atomic surface.
func (s *Stats) Swap(v uint64) uint64 {
	return atomic.SwapUint64(&s.total, v)
}

// Limit reads plain config plainly: never atomic, so fine.
func (s *Stats) Limit() uint64 { return s.limit }

// The declared atomics are only ever receivers of their method set.
func (s *Stats) Pack(v uint64)  { s.geom.Store(v) }
func (s *Stats) Unpack() uint64 { return s.geom.Load() }
func (s *Stats) TryAdvance(old, new uint64) bool {
	return s.geom.CompareAndSwap(old, new)
}
func (s *Stats) Open() bool { return s.open.Load() }
func (s *Stats) Close()     { s.open.Store(false) }
