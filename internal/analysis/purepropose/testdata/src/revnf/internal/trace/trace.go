// Package trace is a stub of revnf/internal/trace declaring just enough
// of the Recorder protocol for the fixtures to emit decision traces.
package trace

type DecisionTrace struct {
	Request int
}

type Recorder interface {
	Sample(requestID int) bool
	Record(t *DecisionTrace)
}

var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Sample(int) bool       { return false }
func (nopRecorder) Record(*DecisionTrace) {}
