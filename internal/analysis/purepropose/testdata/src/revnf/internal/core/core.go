// Package core is a stub of revnf/internal/core declaring just enough of
// the two-phase contract for the fixtures to implement it.
package core

type Request struct{ ID int }

type Placement struct{ Cloudlet int }

type CapacityView interface {
	Residual(cloudlet, slot int) int
}

type TwoPhaseScheduler interface {
	Propose(req Request, view CapacityView) (Placement, bool)
	Commit(req Request, p Placement)
	Abort(req Request, p Placement)
}
