// Package timeslot is a stub of revnf/internal/timeslot: the Ledger type
// with the mutator method set the analyzer bans from Propose.
package timeslot

type Ledger struct {
	used [][]int
}

func (l *Ledger) Reserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	return true, nil
}

func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Release(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Residual(cloudlet, slot int) int { return 0 }

// Pool stubs the refcounted shared-backup layer over the Ledger.
type Pool struct {
	refs map[int]int
}

func (p *Pool) Acquire(group, cloudlet, start, duration, units int) error { return nil }

func (p *Pool) Release(group, start, duration int) error { return nil }

func (p *Pool) Refs(group, slot int) int { return 0 }
