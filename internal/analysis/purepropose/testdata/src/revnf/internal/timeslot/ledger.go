// Package timeslot is a stub of revnf/internal/timeslot: the Ledger type
// with the mutator method set the analyzer bans from Propose.
package timeslot

type Ledger struct {
	used [][]int
}

func (l *Ledger) Reserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	return true, nil
}

func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Release(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Residual(cloudlet, slot int) int { return 0 }
