// Package pp exercises the purepropose invariant over stub
// implementations of the core.TwoPhaseScheduler contract.
package pp

import (
	"sync"

	"revnf/internal/core"
	"revnf/internal/timeslot"
	"revnf/internal/trace"
)

// DirectWrite mutates its own fields inside Propose.
type DirectWrite struct {
	lambda []float64
	count  int
}

func (s *DirectWrite) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	s.lambda[0] = 1 // want `Propose writes receiver state`
	s.count++       // want `Propose writes receiver state`
	return core.Placement{}, true
}

func (s *DirectWrite) Commit(req core.Request, p core.Placement) {}
func (s *DirectWrite) Abort(req core.Request, p core.Placement)  {}

// Transitive reaches the write through a same-package helper method; the
// diagnostic lands on the call site in Propose, not on the helper.
type Transitive struct {
	lambda []float64
}

func (s *Transitive) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	s.updateDuals(req) // want `Propose calls updateDuals, which writes receiver state`
	return core.Placement{}, true
}

func (s *Transitive) updateDuals(req core.Request) {
	s.lambda[0] = 2
}

// Commit may call the same helper freely: mutation in Commit is the point.
func (s *Transitive) Commit(req core.Request, p core.Placement) { s.updateDuals(req) }
func (s *Transitive) Abort(req core.Request, p core.Placement)  {}

// Deep reaches a write two method hops away.
type Deep struct{ n int }

func (s *Deep) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	s.bump() // want `Propose calls bump, which transitively writes receiver state \(via inc\)`
	return core.Placement{}, true
}

func (s *Deep) bump() { s.inc() }
func (s *Deep) inc()  { s.n++ }

func (s *Deep) Commit(req core.Request, p core.Placement) {}
func (s *Deep) Abort(req core.Request, p core.Placement)  {}

// LedgerTouch reserves capacity inside Propose — the engine's job.
type LedgerTouch struct {
	ledger *timeslot.Ledger
}

func (s *LedgerTouch) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	_ = s.ledger.Reserve(0, 1, 1, 1) // want `reserving capacity is the engine's job`
	return core.Placement{}, true
}

func (s *LedgerTouch) Commit(req core.Request, p core.Placement) {}
func (s *LedgerTouch) Abort(req core.Request, p core.Placement)  {}

// Pure is the blessed shape: price reads under the read lock, writes only
// to locals, ledger reads through the capacity view. Nothing is flagged.
type Pure struct {
	mu     sync.RWMutex
	lambda []float64
}

func (s *Pure) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	price := 0.0
	for _, l := range s.lambda {
		price += l
	}
	if price > 1 {
		return core.Placement{}, false
	}
	return core.Placement{Cloudlet: view.Residual(0, 1)}, true
}

func (s *Pure) Commit(req core.Request, p core.Placement) {
	s.mu.Lock()
	s.lambda[0] = 3 // Commit owns mutation; not this analyzer's business
	s.mu.Unlock()
}

func (s *Pure) Abort(req core.Request, p core.Placement) {}

// RecorderEmit is the observability carve-out: emitting a decision trace
// into an injected trace.Recorder from Propose — directly or through a
// same-package helper — is NOT state mutation (the core contract blesses
// it: traces never feed back into admission decisions). Nothing here is
// flagged; the Recorder methods live in another package, and the helper
// writes only locals.
type RecorderEmit struct {
	mu     sync.RWMutex
	lambda []float64
	rec    trace.Recorder
}

func (s *RecorderEmit) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := s.rec.Sample(req.ID)
	s.mu.RLock()
	price := 0.0
	for _, l := range s.lambda {
		price += l
	}
	s.mu.RUnlock()
	if tracing {
		s.recordPropose(req, price)
	}
	return core.Placement{Cloudlet: view.Residual(0, 1)}, price <= 1
}

func (s *RecorderEmit) recordPropose(req core.Request, price float64) {
	dt := &trace.DecisionTrace{Request: req.ID}
	s.rec.Record(dt)
}

func (s *RecorderEmit) Commit(req core.Request, p core.Placement) {}
func (s *RecorderEmit) Abort(req core.Request, p core.Placement)  {}

// NotAScheduler has a Propose method but does not implement the contract,
// so its writes are out of scope.
type NotAScheduler struct{ n int }

func (s *NotAScheduler) Propose() { s.n++ }

// PoolTouch joins a shared-backup pool inside Propose — acquiring pooled
// capacity is the engine's job, after arbitration.
type PoolTouch struct {
	pool *timeslot.Pool
}

func (s *PoolTouch) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	_ = s.pool.Acquire(0, 1, 1, 1, 1) // want `reserving capacity is the engine's job`
	return core.Placement{}, true
}

func (s *PoolTouch) Commit(req core.Request, p core.Placement) {}
func (s *PoolTouch) Abort(req core.Request, p core.Placement)  {}

// PoolRead only reads pool state from Propose; refcount reads are not
// capacity mutation and are not flagged.
type PoolRead struct {
	pool *timeslot.Pool
}

func (s *PoolRead) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	return core.Placement{}, s.pool.Refs(0, 1) < 4
}

func (s *PoolRead) Commit(req core.Request, p core.Placement) {}
func (s *PoolRead) Abort(req core.Request, p core.Placement)  {}
