// Package purepropose enforces that Propose methods of two-phase
// schedulers are side-effect free.
//
// Invariant: core.TwoPhaseScheduler requires Propose to leave scheduler
// state untouched — the competitive-ratio argument for the primal-dual
// algorithms assumes every dual-price (λ) mutation happens in serialized
// Commit order, and the sharded serve engine runs any number of Propose
// calls concurrently under only a read lock. A write that sneaks into
// Propose is simultaneously a data race and a break in the paper's
// analysis.
//
// The pass flags, inside any method named Propose whose receiver type
// implements core.TwoPhaseScheduler:
//
//   - assignments (including compound assignment, ++/--, and writes
//     through indexes such as s.lambda[j][t-1] = v) whose left-hand side
//     is rooted in the receiver;
//   - calls to the timeslot.Ledger mutators (Reserve, ReserveWindow,
//     ForceReserve, Release) and the timeslot.Pool mutators (Acquire,
//     Release — the refcounted shared-backup layer reserves ledger
//     capacity under the covers) — reserving capacity is the engine's
//     job, after arbitration;
//   - calls to same-package methods reachable through the receiver (for
//     example s.updateDuals(...), the λ update) that transitively do
//     either of the above.
//
// Method calls that merely read, and calls into other packages (for
// example the mutex RLock/RUnlock pair or a guarded rng draw, both
// explicitly blessed by the core contract), are not flagged; the pass is
// a syntactic under-approximation, not an escape-proof sandbox.
//
// Observability carve-out: emitting a decision trace from Propose into an
// injected trace.Recorder (Sample/Record) is explicitly allowed — the
// core.TwoPhaseScheduler contract blesses it because traces never feed
// back into admission decisions. The pass accepts it naturally: the
// Recorder's methods belong to revnf/internal/trace, not the scheduler's
// package, so the transitive-mutation walk never descends into them, and
// trace-assembly helpers that write only locals are clean by the same
// rules as any other read-only helper.
package purepropose

import (
	"go/ast"
	"go/types"

	"revnf/internal/analysis/astq"
	"revnf/internal/analysis/framework"
)

// CorePkgPath and InterfaceName locate the two-phase contract; the
// analyzer is inert in packages that do not import it.
var (
	CorePkgPath   = "revnf/internal/core"
	InterfaceName = "TwoPhaseScheduler"
)

// LedgerPkgPath and CapacityMutators identify the capacity-mutating API
// calls Propose must never make, per guarded type in the timeslot
// package: the Ledger's reserve/release methods and the refcounted
// Pool's acquire/release methods (a Pool.Acquire reserves ledger rows
// under the covers).
var (
	LedgerPkgPath    = "revnf/internal/timeslot"
	CapacityMutators = map[string]map[string]bool{
		"Ledger": {"Reserve": true, "ReserveWindow": true, "ForceReserve": true, "Release": true},
		"Pool":   {"Acquire": true, "Release": true},
	}
)

// capacityMutator reports whether fn is a mutating method of one of the
// guarded timeslot types, returning the type's name.
func capacityMutator(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	for typeName, methods := range CapacityMutators {
		if astq.IsNamedType(sig.Recv().Type(), LedgerPkgPath, typeName) && methods[fn.Name()] {
			return typeName, true
		}
	}
	return "", false
}

// Analyzer is the purepropose pass.
var Analyzer = &framework.Analyzer{
	Name: "purepropose",
	Doc:  "Propose methods of core.TwoPhaseScheduler implementations must not mutate scheduler or ledger state",
	Run:  run,
}

func run(pass *framework.Pass) error {
	corePkg := astq.ImportedPackage(pass.Pkg, CorePkgPath)
	if corePkg == nil && pass.Pkg.Path() != CorePkgPath {
		return nil
	}
	scope := pass.Pkg.Scope()
	if corePkg != nil {
		scope = corePkg.Scope()
	}
	obj := scope.Lookup(InterfaceName)
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	c := &checker{pass: pass, decls: methodDecls(pass), mutCache: make(map[*types.Func]*mutation)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Propose" || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !implements(recv.Type(), iface) {
				continue
			}
			c.checkPropose(fd)
		}
	}
	return nil
}

// implements reports whether T or *T satisfies the interface.
func implements(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// methodDecls maps every method's types.Func to its declaration, so the
// checker can walk transitive callees within the package.
func methodDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv != nil && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// mutation describes why a method counts as state-mutating.
type mutation struct {
	what string // human description of the first mutation found
}

type checker struct {
	pass     *framework.Pass
	decls    map[*types.Func]*ast.FuncDecl
	mutCache map[*types.Func]*mutation
	visiting map[*types.Func]bool
}

// checkPropose reports every mutation reachable from one Propose body.
func (c *checker) checkPropose(fd *ast.FuncDecl) {
	recvVar := receiverVar(c.pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if c.rootedInReceiver(lhs, recvVar) {
					c.pass.Reportf(lhs.Pos(),
						"Propose writes receiver state; all scheduler mutation belongs in Commit (serialized)")
				}
			}
		case *ast.IncDecStmt:
			if c.rootedInReceiver(x.X, recvVar) {
				c.pass.Reportf(x.X.Pos(),
					"Propose writes receiver state; all scheduler mutation belongs in Commit (serialized)")
			}
		case *ast.CallExpr:
			c.checkCall(x, recvVar)
		}
		return true
	})
}

// checkCall flags ledger mutators and transitively mutating same-package
// methods called through the receiver.
func (c *checker) checkCall(call *ast.CallExpr, recvVar *types.Var) {
	callee, recvExpr := astq.MethodCallee(c.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if typeName, ok := capacityMutator(callee); ok {
		c.pass.Reportf(call.Pos(),
			"Propose calls %s.%s.%s; reserving capacity is the engine's job after ledger arbitration",
			LedgerPkgPath, typeName, callee.Name())
		return
	}
	// Same-package method reached through the receiver: follow it.
	if callee.Pkg() != c.pass.Pkg || recvVar == nil || !c.rootedInReceiver(recvExpr, recvVar) {
		return
	}
	if mut := c.mutates(callee); mut != nil {
		c.pass.Reportf(call.Pos(),
			"Propose calls %s, which %s; all scheduler mutation belongs in Commit (serialized)",
			callee.Name(), mut.what)
	}
}

// mutates reports whether the method (or anything it calls through its own
// receiver within this package) writes receiver state or mutates the
// ledger. Results are memoized; cycles resolve to "no mutation" for the
// back edge, which is sound for this use because any real write on the
// cycle is found when its own frame is walked.
func (c *checker) mutates(fn *types.Func) *mutation {
	if mut, ok := c.mutCache[fn]; ok {
		return mut
	}
	if c.visiting == nil {
		c.visiting = make(map[*types.Func]bool)
	}
	if c.visiting[fn] {
		return nil
	}
	c.visiting[fn] = true
	defer delete(c.visiting, fn)
	fd := c.decls[fn]
	if fd == nil {
		c.mutCache[fn] = nil
		return nil
	}
	recvVar := receiverVar(c.pass, fd)
	var found *mutation
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if c.rootedInReceiver(lhs, recvVar) {
					found = &mutation{what: "writes receiver state"}
				}
			}
		case *ast.IncDecStmt:
			if c.rootedInReceiver(x.X, recvVar) {
				found = &mutation{what: "writes receiver state"}
			}
		case *ast.CallExpr:
			callee, recvExpr := astq.MethodCallee(c.pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			if _, ok := capacityMutator(callee); ok {
				found = &mutation{what: "mutates timeslot capacity state"}
				return true
			}
			if callee.Pkg() == c.pass.Pkg && recvVar != nil && c.rootedInReceiver(recvExpr, recvVar) {
				if mut := c.mutates(callee); mut != nil {
					found = &mutation{what: "transitively " + mut.what + " (via " + callee.Name() + ")"}
				}
			}
		}
		return true
	})
	c.mutCache[fn] = found
	return found
}

// rootedInReceiver reports whether the expression's leftmost identifier is
// the method's receiver variable.
func (c *checker) rootedInReceiver(e ast.Expr, recvVar *types.Var) bool {
	if recvVar == nil {
		return false
	}
	root := astq.RootIdent(e)
	if root == nil {
		return false
	}
	obj := c.pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[root]
	}
	return obj == recvVar
}

// receiverVar returns the declared receiver variable, or nil for an
// anonymous receiver (which the body cannot reference).
func receiverVar(pass *framework.Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}
