package purepropose_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/purepropose"
)

func TestPurepropose(t *testing.T) {
	analysistest.Run(t, "testdata", purepropose.Analyzer, "pp")
}
