package walltime_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer,
		"revnf/internal/onsite", "revnf/internal/experiments",
		"revnf/internal/chaos", "revnf/internal/repair", "revnf/internal/slo")
}
