// Package onsite impersonates revnf/internal/onsite, a member of the
// deterministic set: wall-clock reads are banned.
package onsite

import "time"

func deadline(start time.Time) bool {
	now := time.Now()               // want `wall-clock read time\.Now`
	return time.Since(start) > 0 && // want `wall-clock read time\.Since`
		now.After(start)
}

// slotAdvance uses only slot arithmetic and duration constants — no
// wall-clock read, nothing flagged.
func slotAdvance(slot int, d time.Duration) int {
	if d > time.Second {
		return slot + 2
	}
	return slot + 1
}
