// Package slo impersonates revnf/internal/slo: availability accounting
// counts observed slots, never wall-clock intervals.
package slo

import "time"

func pollUntil(deadline time.Time) bool {
	return time.Until(deadline) > 0 // want `wall-clock read time\.Until`
}

// observed is the blessed pattern: availability from slot counters.
func observed(up, total int) float64 {
	if total == 0 {
		return 1
	}
	return float64(up) / float64(total)
}
