// Package chaos impersonates revnf/internal/chaos, a member of the
// deterministic set: the injector advances on the engine's slot clock,
// so wall-clock reads are banned.
package chaos

import "time"

func stepAt(slot int) int {
	if time.Now().Unix() > 0 { // want `wall-clock read time\.Now`
		return slot + 1
	}
	return slot
}

// mttrWindow is pure slot arithmetic on a duration constant — allowed.
func mttrWindow(mttr float64, d time.Duration) float64 {
	if d > time.Second {
		return mttr * 2
	}
	return mttr
}
