// Package repair impersonates revnf/internal/repair: episode latencies
// are measured in slots, never in wall time.
package repair

import "time"

func episodeLatency(openedAt time.Time) time.Duration {
	return time.Since(openedAt) // want `wall-clock read time\.Since`
}

// slotLatency is the blessed pattern: latency as slot arithmetic.
func slotLatency(failedAt, repairedAt int) int {
	return repairedAt - failedAt
}
