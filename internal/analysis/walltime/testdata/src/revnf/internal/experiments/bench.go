// Package experiments is outside the deterministic set: measuring
// wall-clock throughput is its job, so time.Now is allowed.
package experiments

import "time"

func throughput(n int, f func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return float64(n) / time.Since(start).Seconds()
}
