// Package walltime forbids wall-clock reads in the deterministic
// scheduling packages.
//
// Invariant: slot time is the only notion of time inside the admission and
// simulation algorithms — it comes from the engine's clock abstraction
// (the batch loop's slot counter, or the serve engine's injectable Now
// function), never from the machine. A stray time.Now in one of these
// packages makes decisions depend on wall time, which breaks replayable
// traces and the golden tests. Packages outside the deterministic set
// (the serve layer's default clock, experiments that measure throughput,
// commands) may read the wall clock freely.
package walltime

import (
	"go/ast"
	"go/types"

	"revnf/internal/analysis/framework"
)

// DeterministicPkgs is the set of package paths in which wall-clock reads
// are forbidden. The driver may override it.
var DeterministicPkgs = map[string]bool{
	"revnf/internal/onsite":   true,
	"revnf/internal/offsite":  true,
	"revnf/internal/baseline": true,
	"revnf/internal/chain":    true,
	"revnf/internal/pool":     true,
	"revnf/internal/simulate": true,
	"revnf/internal/core":     true,
	"revnf/internal/timeslot": true,
	"revnf/internal/trace":    true,
	// Wire decode/encode is pure byte manipulation on the ingest hot
	// path; any clock read there would be both nondeterministic and an
	// allocation-free-path regression risk.
	"revnf/internal/wire": true,
	// The failure runtime is driven by the serve engine's slot clock: a
	// wall-clock read in the injector, repair controller, or SLO books
	// would decouple failures from the slots they are accounted against.
	"revnf/internal/chaos":  true,
	"revnf/internal/repair": true,
	"revnf/internal/slo":    true,
}

// forbidden lists the package-level time functions that read the wall
// clock (Until and Tick derive from Now).
var forbidden = map[string]bool{"Now": true, "Since": true, "Until": true, "Tick": true}

// Analyzer is the walltime pass.
var Analyzer = &framework.Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/time.Since in deterministic packages; slot time comes from the clock abstraction",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !DeterministicPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !forbidden[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(),
				"wall-clock read time.%s in deterministic package %s; slot time must come from the engine clock",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
