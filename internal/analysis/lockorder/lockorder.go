// Package lockorder checks lock-acquisition ordering: every nested
// acquisition must follow the repository's canonical lock order, and no
// package may acquire two lock classes in both orders.
//
// Invariant: the serving stack nests locks in one global order —
//
//	Engine.closeMu → Engine.mu → SerialAdapter.mu → sched.mu
//	  → Ledger.advMu → Ledger.mus[*] → leaf mutexes
//
// (the full ranked list lives in `canonical` below and in DESIGN.md §12;
// "sched.mu" is the abstract class folding every scheduler's RWMutex).
// Any two goroutines that nest in opposite orders can deadlock, and the
// `-race` soaks cannot see it: a lock-order inversion deadlocks only on
// the unlucky interleaving, which sampling rarely hits. This pass covers
// the orderings exhaustively instead.
//
// # How edges are found
//
// Per function, a linear source-order scan tracks the set of lock classes
// held: Lock/RLock on a classifiable mutex (see lockset.ClassOf) adds its
// class, Unlock/RUnlock removes it, and `defer` subtrees are skipped — so
// the dominant `mu.Lock(); defer mu.Unlock()` idiom holds the class for
// the rest of the body, and an explicit early unlock releases it. Every
// acquisition performed while other classes are held records held →
// acquired edges. Acquisitions are attributed to calls two ways:
//
//   - same-package callees contribute their transitive acquisition set
//     (memoized over the package call graph);
//   - cross-package and interface callees contribute a hand-maintained
//     summary keyed by receiver type (`summary` below) — the analyzer's
//     model of which locks the ledger, the schedulers, and the runtime
//     subsystems take. A callee's acquisitions do not persist in the held
//     set: callees are assumed balanced (they release what they acquire).
//
// # What is flagged
//
//   - acquiring a class already held (instance-blind self-deadlock risk);
//   - an edge from a higher-ranked to a lower-ranked canonical class (a
//     canonical-order inversion);
//   - for classes outside the canonical list, edges participating in a
//     cycle within the package (two orders both taken).
//
// # Known approximations
//
// Classes are instance-blind: two Engines locking each other's mutexes
// are indistinguishable from self-nesting (no such topology exists here).
// Loop bodies are scanned once, so the ledger's ascending same-class row
// acquisition in Advance is invisible — ascending row order stays a
// review property, as documented on the ledger. Branches are scanned
// sequentially, so a release on an early-return path releases for the
// linear remainder; this under-approximates held sets but never invents
// edges that cannot occur.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"revnf/internal/analysis/framework"
	"revnf/internal/analysis/lockset"
)

// Analyzer is the lockorder pass.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc:  "nested lock acquisitions must follow the canonical lock order (no inversions, no cycles, no same-class nesting)",
	Run:  run,
}

// schedMu is the abstract class folding every dual-price scheduler's
// RWMutex: the engine holds exactly one scheduler, so their mutexes are
// interchangeable for ordering purposes.
const schedMu lockset.Class = "sched.mu"

// aliases folds concrete lock classes into abstract ones before ranking.
var aliases = map[lockset.Class]lockset.Class{
	"revnf/internal/onsite.Scheduler.mu":       schedMu,
	"revnf/internal/offsite.Scheduler.mu":      schedMu,
	"revnf/internal/chain.OnsiteScheduler.mu":  schedMu,
	"revnf/internal/chain.OffsiteScheduler.mu": schedMu,
}

// canonical is the repository's lock order, outermost first. An edge from
// a later to an earlier class is an inversion. The same list, with the
// reasoning, is documented in DESIGN.md §12.
var canonical = []lockset.Class{
	"revnf/internal/serve.Engine.closeMu",
	"revnf/internal/serve.Engine.mu",
	"revnf/internal/core.SerialAdapter.mu",
	schedMu,
	"revnf/internal/timeslot.Ledger.advMu",
	"revnf/internal/timeslot.Ledger.mus[*]",
	"revnf/internal/trace.Store.mu",
	"revnf/internal/slo.Tracker.mu",
	"revnf/internal/slo.RateEstimator.mu",
	"revnf/internal/repair.Controller.mu",
	"revnf/internal/baseline.RandomOnsite.mu",
	"revnf/internal/serve.ingestStats.batchMu",
	"revnf/internal/serve.shardHist.mu",
	"revnf/internal/serve.StreamServer.mu",
}

// rank maps each canonical class to its position; lower acquires first.
var rank = func() map[lockset.Class]int {
	m := make(map[lockset.Class]int, len(canonical))
	for i, c := range canonical {
		m[c] = i
	}
	return m
}()

// summary is the cross-package acquisition model: for a call on a
// receiver of the keyed type ("pkgpath.TypeName", concrete or interface),
// the classes the callee may acquire. Interface entries union over their
// repository implementations. TwoPhaseScheduler and WindowAdvancer omit
// SerialAdapter.mu deliberately: the adapter implements both so that it
// can stand in for the scheduler it wraps, but an adapter never wraps
// another adapter — including it would make the adapter's own forwarding
// calls look like same-class self-nesting.
var summary = map[string][]lockset.Class{
	"revnf/internal/timeslot.Ledger":   {"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]"},
	"revnf/internal/core.CapacityView": {"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]"},
	"revnf/internal/core.Scheduler": {
		"revnf/internal/core.SerialAdapter.mu", schedMu,
		"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]",
		"revnf/internal/trace.Store.mu", "revnf/internal/baseline.RandomOnsite.mu",
	},
	"revnf/internal/core.TwoPhaseScheduler": {
		schedMu,
		"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]",
		"revnf/internal/trace.Store.mu",
	},
	"revnf/internal/core.WindowAdvancer": {schedMu},
	"revnf/internal/core.LambdaReader":   {schedMu},
	"revnf/internal/core.SerialAdapter": {
		"revnf/internal/core.SerialAdapter.mu", schedMu,
		"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]",
		"revnf/internal/trace.Store.mu",
	},
	"revnf/internal/onsite.Scheduler":  {schedMu, "revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]"},
	"revnf/internal/offsite.Scheduler": {schedMu, "revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]"},
	"revnf/internal/chain.OnsiteScheduler": {
		schedMu, "revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]", "revnf/internal/trace.Store.mu",
	},
	"revnf/internal/chain.OffsiteScheduler": {
		schedMu, "revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]", "revnf/internal/trace.Store.mu",
	},
	"revnf/internal/baseline.RandomOnsite": {
		"revnf/internal/baseline.RandomOnsite.mu",
		"revnf/internal/timeslot.Ledger.advMu", "revnf/internal/timeslot.Ledger.mus[*]",
		"revnf/internal/trace.Store.mu",
	},
	"revnf/internal/trace.Store":       {"revnf/internal/trace.Store.mu"},
	"revnf/internal/trace.Recorder":    {"revnf/internal/trace.Store.mu"},
	"revnf/internal/slo.Tracker":       {"revnf/internal/slo.Tracker.mu"},
	"revnf/internal/slo.RateEstimator": {"revnf/internal/slo.RateEstimator.mu"},
	"revnf/internal/repair.Controller": {"revnf/internal/repair.Controller.mu"},
}

// fold applies the alias map.
func fold(c lockset.Class) lockset.Class {
	if a, ok := aliases[c]; ok {
		return a
	}
	return c
}

// edge is one observed held → acquired pair.
type edge struct {
	from, to lockset.Class
	// pos is the acquisition site (the Lock call or the call expression
	// whose callee acquires); fromPos is where `from` was acquired.
	pos, fromPos token.Pos
	// via is the callee whose summary/transitive set acquired `to`, nil
	// for a direct Lock/RLock.
	via *types.Func
}

func run(pass *framework.Pass) error {
	s := &scanner{
		pass:      pass,
		decls:     lockset.FuncDecls(pass),
		acquires:  make(map[*types.Func][]lockset.Class),
		computing: make(map[*types.Func]bool),
	}
	// Deterministic function order: by declaration position.
	fns := make([]*types.Func, 0, len(s.decls))
	for fn := range s.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return s.decls[fns[i]].Pos() < s.decls[fns[j]].Pos() })
	for _, fn := range fns {
		s.scanBody(s.decls[fn].Body)
		// Function literals spawn fresh scans: a goroutine or deferred
		// closure does not inherit the spawner's held set.
		for len(s.pending) > 0 {
			body := s.pending[0]
			s.pending = s.pending[1:]
			s.scanBody(body)
		}
	}
	s.report()
	return nil
}

type scanner struct {
	pass  *framework.Pass
	decls map[*types.Func]*ast.FuncDecl
	edges []edge
	// pending queues function-literal bodies for their own scans.
	pending []*ast.BlockStmt
	// acquires memoizes transitive acquisition sets per declared function;
	// computing breaks recursion cycles.
	acquires  map[*types.Func][]lockset.Class
	computing map[*types.Func]bool
}

// scanBody runs the linear held-set scan over one body.
func (s *scanner) scanBody(body *ast.BlockStmt) {
	held := make(map[lockset.Class]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			s.pending = append(s.pending, x.Body)
			return false
		case *ast.CallExpr:
			if op, ok := lockset.AsLockOp(s.pass.TypesInfo, x); ok {
				cls := fold(op.Class)
				if op.Acquire {
					s.noteAcquire(held, cls, x.Pos(), nil)
					held[cls] = x.Pos()
				} else {
					delete(held, cls)
				}
				return true
			}
			if len(held) > 0 {
				if fn := lockset.CalleeOf(s.pass.TypesInfo, x); fn != nil {
					for _, a := range s.acquiresOf(fn) {
						s.noteAcquire(held, a, x.Pos(), fn)
					}
				}
			}
			return true
		}
		return true
	})
}

// noteAcquire records one held → acquired edge per held class.
func (s *scanner) noteAcquire(held map[lockset.Class]token.Pos, to lockset.Class, pos token.Pos, via *types.Func) {
	for from, fromPos := range held {
		s.edges = append(s.edges, edge{from: from, to: to, pos: pos, fromPos: fromPos, via: via})
	}
}

// acquiresOf returns the folded classes a callee may acquire: the
// transitive set for same-package declared functions, the summary for
// cross-package and interface callees.
func (s *scanner) acquiresOf(fn *types.Func) []lockset.Class {
	if set, ok := s.acquires[fn]; ok {
		return set
	}
	fd, declared := s.decls[fn]
	if !declared {
		var set []lockset.Class
		if named := lockset.ReceiverNamed(fn); named != nil && named.Obj().Pkg() != nil {
			for _, c := range summary[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
				set = append(set, fold(c))
			}
		}
		s.acquires[fn] = set
		return set
	}
	if s.computing[fn] {
		return nil // recursion: the cycle's acquisitions surface elsewhere
	}
	s.computing[fn] = true
	seen := make(map[lockset.Class]bool)
	var set []lockset.Class
	add := func(c lockset.Class) {
		if !seen[c] {
			seen[c] = true
			set = append(set, c)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // asynchronous acquisition is not the caller's
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lockset.AsLockOp(s.pass.TypesInfo, call); ok {
			if op.Acquire {
				add(fold(op.Class))
			}
			return true
		}
		if callee := lockset.CalleeOf(s.pass.TypesInfo, call); callee != nil && callee != fn {
			for _, c := range s.acquiresOf(callee) {
				add(c)
			}
		}
		return true
	})
	delete(s.computing, fn)
	s.acquires[fn] = set
	return set
}

// report turns the recorded edges into diagnostics: self-edges and
// canonical inversions at every site, cycles among unranked classes once
// per ordered pair.
func (s *scanner) report() {
	sort.Slice(s.edges, func(i, j int) bool {
		a, b := s.edges[i], s.edges[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	var cyclic []edge
	for _, e := range s.edges {
		switch {
		case e.from == e.to:
			s.pass.Reportf(e.pos, "%sacquires %s while already holding it (held since %s); same-class nesting has no defined order and can self-deadlock",
				viaClause(e), lockset.TrimPkg(e.to), s.pass.Fset.Position(e.fromPos))
		case ranked(e.from) && ranked(e.to):
			if rank[e.from] > rank[e.to] {
				s.pass.Reportf(e.pos, "%sacquires %s while holding %s, inverting the canonical lock order (%s ranks before %s; see DESIGN.md)",
					viaClause(e), lockset.TrimPkg(e.to), lockset.TrimPkg(e.from), lockset.TrimPkg(e.to), lockset.TrimPkg(e.from))
			}
		default:
			cyclic = append(cyclic, e)
		}
	}
	s.reportCycles(cyclic)
}

func ranked(c lockset.Class) bool {
	_, ok := rank[c]
	return ok
}

func viaClause(e edge) string {
	if e.via == nil {
		return ""
	}
	return fmt.Sprintf("call to %s ", lockset.TrimPkg(lockset.Class(lockset.MethodKey(e.via))))
}

// reportCycles flags edges between (at least partly) unranked classes
// that sit inside a strongly connected component: the package takes the
// classes in more than one order. One diagnostic per ordered pair, at the
// first recorded site.
func (s *scanner) reportCycles(edges []edge) {
	if len(edges) == 0 {
		return
	}
	adj := make(map[lockset.Class][]lockset.Class)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	comp := scc(adj)
	done := make(map[[2]lockset.Class]bool)
	for _, e := range edges {
		cf, okf := comp[e.from]
		ct, okt := comp[e.to]
		if !okf || !okt || cf != ct {
			continue
		}
		key := [2]lockset.Class{e.from, e.to}
		if done[key] {
			continue
		}
		done[key] = true
		s.pass.Reportf(e.pos, "%sacquires %s while holding %s, but this package also nests them in the opposite order: lock-order cycle",
			viaClause(e), lockset.TrimPkg(e.to), lockset.TrimPkg(e.from))
	}
}

// scc computes strongly connected components (Tarjan), returning a
// component id per node; only components with a real cycle (size > 1)
// are assigned — self-edges are handled before cycle detection.
func scc(adj map[lockset.Class][]lockset.Class) map[lockset.Class]int {
	nodes := make([]lockset.Class, 0, len(adj))
	seen := make(map[lockset.Class]bool)
	addNode := func(c lockset.Class) {
		if !seen[c] {
			seen[c] = true
			nodes = append(nodes, c)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	index := make(map[lockset.Class]int)
	low := make(map[lockset.Class]int)
	onStack := make(map[lockset.Class]bool)
	var stack []lockset.Class
	comp := make(map[lockset.Class]int)
	next, ncomp := 0, 0

	var strongconnect func(v lockset.Class)
	strongconnect = func(v lockset.Class) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []lockset.Class
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				for _, m := range members {
					comp[m] = ncomp
				}
				ncomp++
			}
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
	return comp
}
