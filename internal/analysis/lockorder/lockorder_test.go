package lockorder_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	// The revnf/internal/... fixtures impersonate real repository packages
	// so their lock classes land in the analyzer's canonical order table.
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		"lo", "loclean", "revnf/internal/timeslot", "revnf/internal/serve")
}
