// Package serve impersonates the real engine so cross-package summary
// edges resolve against canonical ranks: Engine.mu may nest over the
// ledger's locks, but a leaf like StreamServer.mu may not.
package serve

import (
	"sync"

	"revnf/internal/timeslot"
)

// Engine mirrors the real shape: the engine mutex above a ledger.
type Engine struct {
	mu     sync.Mutex
	ledger *timeslot.Ledger
}

// Tick holds the engine lock across a ledger advance — the summary
// attributes advMu and mus[*] to the call, both ranked after Engine.mu:
// clean.
func (e *Engine) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ledger.Advance()
}

// StreamServer's mutex is a leaf: ranked after every ledger class.
type StreamServer struct {
	mu sync.Mutex
	e  *Engine
}

// Bad calls into the ledger while holding the leaf lock: both summary
// classes invert the canonical order.
func (s *StreamServer) Bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.e.ledger.Advance() // want `acquires timeslot\.Ledger\.advMu while holding serve\.StreamServer\.mu` `acquires timeslot\.Ledger\.mus\[\*\] while holding serve\.StreamServer\.mu`
}
