// Package timeslot impersonates the real ledger so its lock classes
// resolve to canonical-order ranks: advMu before mus[*].
package timeslot

import "sync"

// Ledger mirrors the real shape: a geometry mutex over a slice of row
// locks.
type Ledger struct {
	advMu sync.Mutex
	mus   []sync.RWMutex
	used  [][]uint32
}

// NewLedger builds a ledger with n rows of w slots.
func NewLedger(n, w int) *Ledger {
	l := &Ledger{mus: make([]sync.RWMutex, n), used: make([][]uint32, n)}
	for j := range l.used {
		l.used[j] = make([]uint32, w)
	}
	return l
}

// Advance takes the geometry lock, then every row lock: the canonical
// order, clean. (The ascending same-class row order inside the loop is
// invisible to the analyzer — loops are scanned once.)
func (l *Ledger) Advance() {
	l.advMu.Lock()
	defer l.advMu.Unlock()
	for j := range l.mus {
		l.mus[j].Lock()
	}
	for j := range l.used {
		l.used[j][0] = 0
	}
	for j := range l.mus {
		l.mus[j].Unlock()
	}
}

// Snapshot reads every row under the geometry lock: clean.
func (l *Ledger) Snapshot() []uint32 {
	l.advMu.Lock()
	defer l.advMu.Unlock()
	out := make([]uint32, len(l.used))
	for j := range l.mus {
		l.mus[j].RLock()
		out[j] = l.used[j][0]
		l.mus[j].RUnlock()
	}
	return out
}

// Bad nests the geometry lock under a row lock: a canonical inversion.
func (l *Ledger) Bad(j int) {
	l.mus[j].Lock()
	defer l.mus[j].Unlock()
	l.advMu.Lock() // want `acquires timeslot\.Ledger\.advMu while holding timeslot\.Ledger\.mus\[\*\], inverting the canonical lock order`
	l.used[j][0] = 0
	l.advMu.Unlock()
}
