// Package lo exercises lockorder's package-local detection: cycles
// between unranked classes, same-class nesting, and the held-set
// mechanics (release, defer, call attribution).
package lo

import "sync"

// A and B form a two-class cycle: ab nests A before B, ba the reverse.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquires lo\.B\.mu while holding lo\.A\.mu, but this package also nests them in the opposite order`
	defer b.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `acquires lo\.A\.mu while holding lo\.B\.mu, but this package also nests them in the opposite order`
	defer a.mu.Unlock()
}

// S exercises same-class nesting: instance-blind analysis cannot tell
// s1 from s2, and the repo has no legitimate same-class nesting.
type S struct{ mu sync.Mutex }

func pair(s1, s2 *S) {
	s1.mu.Lock()
	defer s1.mu.Unlock()
	s2.mu.Lock() // want `acquires lo\.S\.mu while already holding it`
	defer s2.mu.Unlock()
}

// lockS acquires S.mu; viaCall shows the same self-edge attributed
// through a same-package call.
func lockS(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func viaCall(s1, s2 *S) {
	s1.mu.Lock()
	defer s1.mu.Unlock()
	lockS(s2) // want `call to lo\.lockS acquires lo\.S\.mu while already holding it`
}

// C and D are taken in both orders but never nested: an explicit unlock
// empties the held set, so no edge and no diagnostic.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func seq(c *C, d *D) {
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

func seqBack(c *C, d *D) {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
