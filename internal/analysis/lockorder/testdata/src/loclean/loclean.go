// Package loclean is the non-flagging lockorder suite: consistent
// nesting order, including through same-package helpers, goroutines,
// and RWMutex read acquisitions.
package loclean

import "sync"

// Outer always nests before Inner, directly or through bump: one order,
// no cycle, no diagnostic.
type Outer struct {
	mu sync.Mutex
	in *Inner
}

type Inner struct {
	mu sync.RWMutex
	n  int
}

func (i *Inner) bump() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.n++
}

func (o *Outer) Tick() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.bump()
}

func (o *Outer) Peek() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.RLock()
	defer o.in.mu.RUnlock()
	return o.in.n
}

// Spawn acquires Inner inside a goroutine: the closure does not inherit
// Outer's held set (a goroutine runs with its own stack of locks), so no
// Inner → Outer confusion arises from the reversed textual order.
func (o *Outer) Spawn() {
	go func() {
		o.in.bump()
	}()
	o.mu.Lock()
	defer o.mu.Unlock()
}
