package floateq_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer, "fe")
}
