// Package fe exercises the floateq invariant: no ==/!= on
// revenue/reliability/payment-flavored float64 values.
package fe

type Result struct {
	Revenue     float64
	Reliability float64
	Count       int
}

// Revenue is a named float type; comparisons match on the type name even
// when the identifiers do not.
type Revenue float64

func exactRevenue(r Result, want float64) bool {
	return r.Revenue == want // want `exact float comparison \(==\) on "Revenue"`
}

func exactPayment(a, b float64) bool {
	payment := a
	return payment != b // want `exact float comparison \(!=\) on "payment"`
}

func exactNamedType(x, y Revenue) bool {
	return x == y // want `exact float comparison \(==\) on "Revenue"`
}

// intCompare is fine: the operands are not floats.
func intCompare(r Result, n int) bool {
	return r.Count == n
}

// unrelatedNames is fine: neither operand smells of revenue or reliability.
func unrelatedNames(a, b float64) bool {
	return a == b
}

// reliabilityTolerant is the blessed pattern: an explicit tolerance.
func reliabilityTolerant(r Result, want, tol float64) bool {
	d := r.Reliability - want
	return d < tol && d > -tol
}

// pinned opts out with the uniform escape hatch.
func pinned(r Result) bool {
	return r.Revenue == 0 //lint:allow floateq pinned sentinel value
}
