// Package floateq forbids exact equality on revenue/reliability-flavored
// floating point values.
//
// Invariant: revenue sums, reliability products, and payments accumulate
// rounding error along the admission pipeline, so == / != on them is a
// latent heisenbug — two mathematically equal revenues can differ in the
// last ulp depending on summation order (which the sharded serve engine
// does not fix). Comparisons must go through core.FloatEq (or an explicit
// tolerance). Golden tests pin exact float values on purpose and are
// exempt because the revnfvet driver never loads test files; non-test code
// with a justified exact comparison can opt out with a
// "//lint:allow floateq" comment on the flagged line.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"revnf/internal/analysis/framework"
)

// NamePattern selects the value names the invariant covers. An equality
// where either operand's identifiers, field names, or named type match is
// flagged.
var NamePattern = regexp.MustCompile(`(?i)revenue|reliab|payment`)

// Analyzer is the floateq pass.
var Analyzer = &framework.Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on revenue/reliability/payment float64 values; use core.FloatEq",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) || !isFloat(pass, bin.Y) {
				return true
			}
			name, ok := matchedName(pass, bin.X)
			if !ok {
				name, ok = matchedName(pass, bin.Y)
			}
			if !ok {
				return true
			}
			pass.Reportf(bin.OpPos,
				"exact float comparison (%s) on %q; use core.FloatEq or //lint:allow floateq with a reason",
				bin.Op, name)
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression has floating-point type.
func isFloat(pass *framework.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// matchedName returns the first identifier, selector, or named-type name
// in the expression that matches NamePattern.
func matchedName(pass *framework.Pass, e ast.Expr) (string, bool) {
	var found string
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && NamePattern.MatchString(id.Name) {
			found = id.Name
			return false
		}
		return true
	})
	if found != "" {
		return found, true
	}
	if t := pass.TypesInfo.Types[e].Type; t != nil {
		if named, ok := t.(*types.Named); ok && NamePattern.MatchString(named.Obj().Name()) {
			return named.Obj().Name(), true
		}
	}
	return "", false
}
