// Package ledgerapi enforces that the timeslot.Ledger and the refcounted
// timeslot.Pool layered over it are only touched through their atomic
// reserve/release APIs and that reservations do not leak out of helper
// functions unaccounted.
//
// Three checks:
//
//  1. Field access: outside package timeslot, no code may select a struct
//     field of timeslot.Ledger or timeslot.Pool (method calls only). The
//     ledger's rows are guarded by per-cloudlet locks and the pool's
//     refcounts by its own mutex; a direct field read or write bypasses
//     the check-and-commit critical section that makes concurrent
//     admission sound. Today every field is unexported, so this pass
//     guards against the day one is exported for convenience.
//
//  2. Reserve/Release pairing: inside one function, a call to a reserving
//     method (Ledger Reserve, ReserveWindow, ForceReserve; Pool Acquire —
//     which reserves ledger rows under the covers and bumps a refcount)
//     must be followed, on every return path, by either a Release on the
//     same guarded type (rollback) or a call whose name marks the
//     admission as booked (Commit*, record*, admit*, book* — configurable
//     via CoveringPattern). Returns taken only when the reservation
//     itself failed (a branch conditioned on the error or ok variable
//     assigned from the reserve call) are exempt, since a failed
//     ReserveWindow or Acquire books nothing. Functions whose own name
//     says they reserve or commit on behalf of a caller (reserve*,
//     commit*) are exempt — their contract is to hand the footprint to
//     the caller.
//
//  3. Window-base ownership: Advance moves the rolling window's base and
//     recycles every retired slot, so it is a clock operation, not a
//     capacity operation. Outside package timeslot only functions whose
//     name marks them as the per-tick advance path (AdvanceOwnerPattern:
//     advance*, tick*) may call it; anywhere else a stray Advance would
//     silently retire slots that concurrent admissions still address.
//
// The pairing analysis is a deliberately optimistic single pass in source
// order: a covering call in any branch counts for all later paths, and
// loops are walked once. That keeps it free of false positives on the
// engine's rollback patterns at the cost of missing some convoluted
// leaks; "//lint:allow ledgerapi" on a flagged line opts out of the rest.
package ledgerapi

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"revnf/internal/analysis/astq"
	"revnf/internal/analysis/framework"
)

// LedgerPkgPath locates the package owning the guarded types; GuardedTypes
// names them: the Ledger and the refcounted Pool layered over it.
var (
	LedgerPkgPath = "revnf/internal/timeslot"
	GuardedTypes  = []string{"Ledger", "Pool"}
)

// reserveMethods start a reservation and releaseMethods undo one, per
// guarded type; advanceMethods move the Ledger's rolling window base.
var (
	reserveMethods = map[string]map[string]bool{
		"Ledger": {"Reserve": true, "ReserveWindow": true, "ForceReserve": true},
		"Pool":   {"Acquire": true},
	}
	releaseMethods = map[string]map[string]bool{
		"Ledger": {"Release": true},
		"Pool":   {"Release": true},
	}
	advanceMethods = map[string]bool{"Advance": true}
)

// guardedTypeOf returns the guarded type name a receiver type matches, or
// "" when it is not one of GuardedTypes.
func guardedTypeOf(t types.Type) string {
	for _, name := range GuardedTypes {
		if astq.IsNamedType(t, LedgerPkgPath, name) {
			return name
		}
	}
	return ""
}

// AdvanceOwnerPattern matches function names entitled to move the rolling
// window base — the slot clock's advance path.
var AdvanceOwnerPattern = regexp.MustCompile(`(?i)^(advance|tick)`)

// CoveringPattern matches call names that account for a live reservation
// (committing scheduler state or booking the admission).
var CoveringPattern = regexp.MustCompile(`(?i)^(commit|record|admit|book)`)

// SelfExemptPattern matches function names whose contract is to leave the
// reservation live for their caller.
var SelfExemptPattern = regexp.MustCompile(`(?i)^(commit|reserve)`)

// Analyzer is the ledgerapi pass.
var Analyzer = &framework.Analyzer{
	Name: "ledgerapi",
	Doc:  "timeslot.Ledger: no direct field access; reservations must be released or committed on every return path",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Path() == LedgerPkgPath {
		return nil // the ledger's own package owns its internals
	}
	checkFieldAccess(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAdvanceOwnership(pass, fd)
			if SelfExemptPattern.MatchString(fd.Name.Name) {
				continue
			}
			checkPairing(pass, fd.Body)
		}
	}
	return nil
}

// checkFieldAccess flags any selection of a Ledger struct field.
func checkFieldAccess(pass *framework.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if typeName := guardedTypeOf(selection.Recv()); typeName != "" {
				pass.Reportf(sel.Sel.Pos(),
					"direct access to timeslot.%s field %s bypasses the atomic reserve/release API",
					typeName, sel.Sel.Name)
			}
			return true
		})
	}
}

// checkAdvanceOwnership flags Ledger.Advance calls from functions outside
// the slot clock's advance path.
func checkAdvanceOwnership(pass *framework.Pass, fd *ast.FuncDecl) {
	if AdvanceOwnerPattern.MatchString(fd.Name.Name) {
		return
	}
	c := &pairChecker{pass: pass}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isAdvance(call) {
			pass.Reportf(call.Pos(),
				"window-base manipulation: only an advance/tick path may call timeslot.Ledger.Advance, not %s",
				fd.Name.Name)
		}
		return true
	})
}

// pairState is the interpreter state for one function body.
type pairState struct {
	// pendingPos is the position of the latest unaccounted reserve call,
	// or NoPos when every reservation so far is covered.
	pendingPos token.Pos
	// errVars are the variables assigned from the pending reserve call;
	// branches conditioned on them are failure handling and exempt.
	errVars map[types.Object]bool
	// deferCovered is set once a covering call is deferred: it runs on
	// every return path, so nothing can leak.
	deferCovered bool
}

// checkPairing runs the interpreter over one function body and reports
// escaping reservations. Function literals inside the body are analyzed
// as functions of their own.
func checkPairing(pass *framework.Pass, body *ast.BlockStmt) {
	c := &pairChecker{pass: pass}
	st := &pairState{}
	c.walkStmts(body.List, st, false)
	if st.pendingPos.IsValid() && !st.deferCovered && !endsInReturn(body) {
		c.report(body.Rbrace, st.pendingPos)
	}
}

func endsInReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

type pairChecker struct {
	pass *framework.Pass
}

func (c *pairChecker) report(at, reserve token.Pos) {
	c.pass.Reportf(at,
		"reservation made at line %d is neither released nor committed on this return path",
		c.pass.Fset.Position(reserve).Line)
}

func (c *pairChecker) walkStmts(list []ast.Stmt, st *pairState, errBranch bool) {
	for _, s := range list {
		c.walkStmt(s, st, errBranch)
	}
}

func (c *pairChecker) walkStmt(stmt ast.Stmt, st *pairState, errBranch bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, st)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, st)
		c.scanExpr(s.Value, st)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.scanExpr(rhs, st)
		}
		c.recordErrVars(s.Lhs, s.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					var lhs []ast.Expr
					for _, name := range vs.Names {
						lhs = append(lhs, name)
					}
					for _, v := range vs.Values {
						c.scanExpr(v, st)
					}
					c.recordErrVars(lhs, vs.Values, st)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanExpr(r, st)
		}
		if st.pendingPos.IsValid() && !st.deferCovered && !errBranch {
			c.report(s.Return, st.pendingPos)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, errBranch)
		}
		c.scanExpr(s.Cond, st)
		condErr := errBranch || (st.pendingPos.IsValid() && mentionsAny(c.pass, s.Cond, st.errVars))
		c.walkStmts(s.Body.List, st, condErr)
		if s.Else != nil {
			c.walkStmt(s.Else, st, errBranch)
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, st, errBranch)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, errBranch)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, st)
		}
		c.walkStmts(s.Body.List, st, errBranch)
		if s.Post != nil {
			c.walkStmt(s.Post, st, errBranch)
		}
	case *ast.RangeStmt:
		c.scanExpr(s.X, st)
		c.walkStmts(s.Body.List, st, errBranch)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, errBranch)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseErr := errBranch
			for _, e := range cc.List {
				c.scanExpr(e, st)
				if st.pendingPos.IsValid() && mentionsAny(c.pass, e, st.errVars) {
					caseErr = true
				}
			}
			c.walkStmts(cc.Body, st, caseErr)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st, errBranch)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, st, errBranch)
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, st, errBranch)
				}
				c.walkStmts(cc.Body, st, errBranch)
			}
		}
	case *ast.DeferStmt:
		c.scanExpr(s.Call, st)
		if c.isCovering(s.Call) || c.deferLitCovers(s.Call) {
			st.deferCovered = true
			st.pendingPos = token.NoPos
		}
	case *ast.GoStmt:
		c.scanExpr(s.Call, st)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st, errBranch)
	}
}

// recordErrVars notes the variables bound to a reserve call's results so
// branches testing them can be recognized as failure handling.
func (c *pairChecker) recordErrVars(lhs, rhs []ast.Expr, st *pairState) {
	if len(rhs) != 1 || !st.pendingPos.IsValid() {
		return
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok || !c.isReserve(call) {
		return
	}
	st.errVars = make(map[types.Object]bool)
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := identObj(c.pass, id); obj != nil {
				st.errVars[obj] = true
			}
		}
	}
}

// scanExpr updates the state for every call in the expression, skipping
// function literals (each is analyzed as its own function).
func (c *pairChecker) scanExpr(e ast.Expr, st *pairState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkPairing(c.pass, fl.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isReserve(call) {
			st.pendingPos = call.Pos()
			st.errVars = nil
		} else if c.isCovering(call) {
			st.pendingPos = token.NoPos
		}
		return true
	})
}

// deferLitCovers reports whether a deferred function literal contains a
// covering call — the `defer func() { ledger.Release(...) }()` rollback
// pattern, whose outer call has no name for isCovering to match.
func (c *pairChecker) deferLitCovers(call *ast.CallExpr) bool {
	fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	covers := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok && c.isCovering(inner) {
			covers = true
		}
		return !covers
	})
	return covers
}

// isReserve reports whether the call reserves capacity on a guarded type.
func (c *pairChecker) isReserve(call *ast.CallExpr) bool {
	fn, _ := astq.MethodCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	typeName := guardedTypeOf(sig.Recv().Type())
	return typeName != "" && reserveMethods[typeName][fn.Name()]
}

// isAdvance reports whether the call moves the ledger's window base.
func (c *pairChecker) isAdvance(call *ast.CallExpr) bool {
	fn, _ := astq.MethodCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && astq.IsNamedType(sig.Recv().Type(), LedgerPkgPath, "Ledger") &&
		advanceMethods[fn.Name()]
}

// isCovering reports whether the call accounts for a live reservation: a
// Release on a guarded type, or any call whose name marks
// booking/committing.
func (c *pairChecker) isCovering(call *ast.CallExpr) bool {
	if fn, _ := astq.MethodCallee(c.pass.TypesInfo, call); fn != nil {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() != nil {
			if typeName := guardedTypeOf(sig.Recv().Type()); typeName != "" && releaseMethods[typeName][fn.Name()] {
				return true
			}
		}
	}
	return CoveringPattern.MatchString(calleeName(call))
}

// calleeName extracts the syntactic name of the called function.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// mentionsAny reports whether the expression references one of the vars.
func mentionsAny(pass *framework.Pass, e ast.Expr, vars map[types.Object]bool) bool {
	if len(vars) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(pass, id); obj != nil && vars[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

func identObj(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
