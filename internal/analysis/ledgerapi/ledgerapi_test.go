package ledgerapi_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/ledgerapi"
)

func TestLedgerapi(t *testing.T) {
	analysistest.Run(t, "testdata", ledgerapi.Analyzer, "lg")
}
