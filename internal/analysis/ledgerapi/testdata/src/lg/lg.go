// Package lg exercises the ledgerapi invariants: no direct Ledger field
// access, and every reservation released or committed on every return path.
package lg

import (
	"errors"

	"revnf/internal/timeslot"
)

var errFailed = errors.New("failed")

func bad() bool { return false }

func probe() bool { return true }

func recordAdmission() {}

// fieldAccess bypasses the atomic API.
func fieldAccess(l *timeslot.Ledger) int {
	l.Used[0][0] = 3    // want `direct access to timeslot\.Ledger field Used`
	return l.Used[0][0] // want `direct access to timeslot\.Ledger field Used`
}

// leak books nothing on the success path: the reservation escapes.
func leak(l *timeslot.Ledger) bool {
	ok, err := l.ReserveWindow(0, 1, 1, 1)
	if err != nil || !ok {
		return false // failure of the reserve itself: exempt
	}
	return true // want `reservation made at line 27 is neither released nor committed`
}

// leakImplicit leaks through the implicit return at the closing brace.
func leakImplicit(l *timeslot.Ledger) {
	_ = l.Reserve(0, 1, 1, 1)
	recordNothingHere := 0
	_ = recordNothingHere
} // want `reservation made at line 36 is neither released nor committed`

// leakDirect reserves inside the return expression of a function whose
// name promises nothing to the caller.
func leakDirect(l *timeslot.Ledger) error {
	return l.Reserve(0, 1, 1, 1) // want `neither released nor committed`
}

// rollback is the engine's shape: release on the failure branch, book on
// success. Every path is covered.
func rollback(l *timeslot.Ledger) error {
	if err := l.Reserve(0, 1, 1, 1); err != nil {
		return err
	}
	if bad() {
		_ = l.Release(0, 1, 1, 1)
		return errFailed
	}
	recordAdmission()
	return nil
}

// deferredRelease covers all paths with a direct deferred Release.
func deferredRelease(l *timeslot.Ledger) bool {
	if err := l.Reserve(0, 1, 1, 1); err != nil {
		return false
	}
	defer l.Release(0, 1, 1, 1)
	return probe()
}

// deferredClosure covers all paths with the closure rollback pattern.
func deferredClosure(l *timeslot.Ledger) bool {
	if err := l.Reserve(0, 1, 1, 1); err != nil {
		return false
	}
	defer func() { _ = l.Release(0, 1, 1, 1) }()
	return probe()
}

// reserveFootprint's own name says it hands the live reservation to its
// caller: the whole function is exempt.
func reserveFootprint(l *timeslot.Ledger) error {
	return l.Reserve(0, 1, 1, 1)
}

// escapeHatch opts out with the uniform lint:allow comment.
func escapeHatch(l *timeslot.Ledger) bool {
	_ = l.Reserve(0, 1, 1, 1)
	return true //lint:allow ledgerapi throwaway ledger, dies with the function
}

// advanceWindow is the slot clock's advance path: entitled to move the
// rolling window base.
func advanceWindow(l *timeslot.Ledger) {
	_ = l.Advance(5)
}

// tickClock also owns the base (tick* matches the owner pattern).
func tickClock(l *timeslot.Ledger) {
	_ = l.Advance(5)
}

// rebaseSneakily moves the window base from an admission-shaped helper:
// retired slots would vanish under concurrent reservations.
func rebaseSneakily(l *timeslot.Ledger) {
	_ = l.Advance(5) // want `window-base manipulation: only an advance/tick path may call timeslot\.Ledger\.Advance, not rebaseSneakily`
}

// allowedRebase opts out with the uniform lint:allow comment.
func allowedRebase(l *timeslot.Ledger) {
	_ = l.Advance(5) //lint:allow ledgerapi test harness rewinds its private ledger
}

// poolFieldAccess bypasses the pool's refcount mutex.
func poolFieldAccess(p *timeslot.Pool) int {
	return p.Refs[0] // want `direct access to timeslot\.Pool field Refs`
}

// poolLeak acquires a pooled row and books nothing on the success path.
func poolLeak(p *timeslot.Pool) bool {
	if err := p.Acquire(0, 1, 1, 1, 1); err != nil {
		return false // failure of the acquire itself: exempt
	}
	return true // want `reservation made at line \d+ is neither released nor committed`
}

// poolRollback is the engine's shape for pooled backups: release on the
// failure branch, book on success.
func poolRollback(p *timeslot.Pool) error {
	if err := p.Acquire(0, 1, 1, 1, 1); err != nil {
		return err
	}
	if bad() {
		_ = p.Release(0, 1, 1)
		return errFailed
	}
	recordAdmission()
	return nil
}

// pairedAcquire reserves ledger rows and joins the pool; the admission is
// booked once for both, which covers the pair.
func pairedAcquire(l *timeslot.Ledger, p *timeslot.Pool) error {
	if err := l.Reserve(0, 1, 1, 1); err != nil {
		return err
	}
	if err := p.Acquire(0, 1, 1, 1, 1); err != nil {
		_ = l.Release(0, 1, 1, 1)
		return err
	}
	recordAdmission()
	return nil
}
