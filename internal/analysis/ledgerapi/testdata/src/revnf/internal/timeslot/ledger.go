// Package timeslot is a stub of revnf/internal/timeslot. Unlike the real
// ledger it exports a field, so the fixtures can exercise the field-access
// check the pass keeps for the day a field is exported for convenience.
package timeslot

type Ledger struct {
	Used [][]int
}

func (l *Ledger) Reserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	return true, nil
}

func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Release(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Advance(base int) error { return nil }

func (l *Ledger) Residual(cloudlet, slot int) int { return 0 }

// Pool stubs the refcounted shared-backup layer over the Ledger. Like the
// Ledger stub it exports a field so the field-access check can fire.
type Pool struct {
	Refs map[int]int
}

func (p *Pool) Acquire(group, cloudlet, start, duration, units int) error { return nil }

func (p *Pool) Release(group, start, duration int) error { return nil }

func (p *Pool) Covered(group, slot int) bool { return false }
