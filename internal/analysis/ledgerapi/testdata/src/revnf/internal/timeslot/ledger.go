// Package timeslot is a stub of revnf/internal/timeslot. Unlike the real
// ledger it exports a field, so the fixtures can exercise the field-access
// check the pass keeps for the day a field is exported for convenience.
package timeslot

type Ledger struct {
	Used [][]int
}

func (l *Ledger) Reserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	return true, nil
}

func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Release(cloudlet, start, duration, units int) error { return nil }

func (l *Ledger) Advance(base int) error { return nil }

func (l *Ledger) Residual(cloudlet, slot int) int { return 0 }
