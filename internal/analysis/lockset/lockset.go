// Package lockset holds the concurrency-analysis utilities shared by the
// guardedby and lockorder analyzers: naming locks by the struct field that
// holds them (a "lock class"), recognizing acquisition and release calls,
// parsing "guarded by" field annotations, and resolving call targets for
// the same-package call-graph walks both analyzers perform.
//
// # Lock classes
//
// A lock class identifies one mutex — or one family of mutexes — by the
// field that holds it rather than by a runtime instance:
//
//	revnf/internal/serve.Engine.mu        one sync.Mutex field
//	revnf/internal/timeslot.Ledger.mus[*] a slice of per-row locks
//
// Class-level (instance-blind) reasoning is a deliberate approximation:
// it cannot distinguish two Engines locking each other's mutexes, but
// every lock in this repository is owned by exactly one long-lived value
// per daemon, so the field is the lock for all practical purposes.
//
// # Guard annotations
//
// A struct field whose access is protected by a sibling mutex field
// declares it in its doc or line comment:
//
//	slot int // guarded by mu
//	used [][]int // guarded by mus[*]
//
// The "[*]" suffix names a slice/array of mutexes: any element counts as
// the guard (the annotation cannot express which index; index discipline
// stays a code-review property).
package lockset

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"revnf/internal/analysis/astq"
	"revnf/internal/analysis/framework"
)

// Mode is the acquisition mode of a lock operation.
type Mode int

// Acquisition modes, ordered by strength: a write acquisition licenses
// everything a read acquisition does.
const (
	// ModeNone means the lock is not held.
	ModeNone Mode = iota
	// ModeRead is the shared side of a sync.RWMutex (RLock).
	ModeRead
	// ModeWrite is exclusive: sync.Mutex.Lock or sync.RWMutex.Lock.
	ModeWrite
)

func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeWrite:
		return "write"
	default:
		return "none"
	}
}

// Class names one lock (or lock family) by its owning field; see the
// package comment for the format.
type Class string

// lockMethod classifies the sync.Mutex/sync.RWMutex method set.
var lockMethod = map[string]struct {
	acquire bool
	mode    Mode
}{
	"Lock":    {acquire: true, mode: ModeWrite},
	"RLock":   {acquire: true, mode: ModeRead},
	"Unlock":  {acquire: false, mode: ModeWrite},
	"RUnlock": {acquire: false, mode: ModeRead},
}

// isSyncLocker reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	return astq.IsNamedType(t, "sync", "Mutex") || astq.IsNamedType(t, "sync", "RWMutex")
}

// LockOp describes one recognized mutex operation.
type LockOp struct {
	// Class is the lock operated on.
	Class Class
	// Acquire distinguishes Lock/RLock from Unlock/RUnlock.
	Acquire bool
	// Mode is ModeWrite for Lock/Unlock, ModeRead for RLock/RUnlock.
	Mode Mode
}

// AsLockOp recognizes a call as a sync.Mutex/sync.RWMutex operation on a
// classifiable lock and returns its description. Calls on locks with no
// class (local mutex variables, mutexes reached through arbitrary
// expressions) return ok=false: a lock that cannot be named cannot
// participate in class-level reasoning.
func AsLockOp(info *types.Info, call *ast.CallExpr) (LockOp, bool) {
	callee, recv := astq.MethodCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return LockOp{}, false
	}
	m, ok := lockMethod[callee.Name()]
	if !ok {
		return LockOp{}, false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSyncLocker(sig.Recv().Type()) {
		return LockOp{}, false
	}
	class, ok := ClassOf(info, recv)
	if !ok {
		return LockOp{}, false
	}
	return LockOp{Class: class, Acquire: m.acquire, Mode: m.mode}, true
}

// ClassOf names the lock held in expr (the x of x.Lock()). It recognizes
// field selectors, optionally behind one index expression (a slice or
// array of locks, named with a "[*]" suffix), and package-level
// variables. Locals and compound expressions have no class.
func ClassOf(info *types.Info, expr ast.Expr) (Class, bool) {
	expr = ast.Unparen(expr)
	indexed := false
	if ix, ok := expr.(*ast.IndexExpr); ok {
		expr = ast.Unparen(ix.X)
		indexed = true
	}
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		obj := info.Uses[x.Sel]
		v, ok := obj.(*types.Var)
		if !ok {
			return "", false
		}
		if v.IsField() {
			if sel, ok := info.Selections[x]; ok {
				if named := astq.Named(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
					return fieldClass(named.Obj().Pkg().Path(), named.Obj().Name(), v.Name(), indexed), true
				}
			}
			return "", false
		}
		// Package-qualified variable (pkg.Mu).
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return varClass(v.Pkg().Path(), v.Name(), indexed), true
		}
		return "", false
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false // local variable: no class
		}
		return varClass(v.Pkg().Path(), v.Name(), indexed), true
	default:
		return "", false
	}
}

func fieldClass(pkgPath, typeName, field string, indexed bool) Class {
	c := Class(pkgPath + "." + typeName + "." + field)
	if indexed {
		c += "[*]"
	}
	return c
}

func varClass(pkgPath, name string, indexed bool) Class {
	c := Class(pkgPath + "." + name)
	if indexed {
		c += "[*]"
	}
	return c
}

// FieldClass names the lock class of a struct field object directly (used
// to resolve guard annotations against the fields of the same struct).
func FieldClass(owner *types.Named, field string, indexed bool) Class {
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	return fieldClass(owner.Obj().Pkg().Path(), owner.Obj().Name(), field, indexed)
}

// Guard is one parsed "guarded by" annotation.
type Guard struct {
	// Owner is the struct type declaring both the guarded field and the
	// guard.
	Owner *types.Named
	// Field is the annotated (guarded) field.
	Field *types.Var
	// MutexField is the guard's field name within Owner.
	MutexField string
	// Indexed marks a "[*]" guard: a slice/array of mutexes any element
	// of which counts as the guard.
	Indexed bool
	// Class is the guard's lock class.
	Class Class
	// Pos locates the annotation (the field), for diagnostics.
	Pos ast.Node
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)(\[\*\])?`)

// ParseGuards scans every struct type declared in the pass's files for
// "guarded by <field>" annotations on field doc or line comments and
// resolves them to Guard records keyed by the guarded field object.
// Malformed annotations (a guard naming no sibling field, or naming a
// non-mutex) are reported through the pass and skipped.
func ParseGuards(pass *framework.Pass) map[*types.Var]*Guard {
	out := make(map[*types.Var]*Guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			parseStructGuards(pass, named, st, out)
			return true
		})
	}
	return out
}

func parseStructGuards(pass *framework.Pass, owner *types.Named, st *ast.StructType, out map[*types.Var]*Guard) {
	under, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fieldByName := make(map[string]*types.Var, under.NumFields())
	for i := 0; i < under.NumFields(); i++ {
		f := under.Field(i)
		fieldByName[f.Name()] = f
	}
	for _, field := range st.Fields.List {
		m := guardAnnotation(field)
		if m == nil {
			continue
		}
		mutexName, indexed := m[1], m[2] == "[*]"
		guardField, ok := fieldByName[mutexName]
		if !ok {
			pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a field of %s", mutexName, owner.Obj().Name())
			continue
		}
		if !guardIsMutex(guardField.Type(), indexed) {
			pass.Reportf(field.Pos(), "guarded-by annotation names %s.%s, which is not a sync.Mutex/sync.RWMutex%s",
				owner.Obj().Name(), mutexName, map[bool]string{true: " slice/array", false: ""}[indexed])
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out[v] = &Guard{
					Owner:      owner,
					Field:      v,
					MutexField: mutexName,
					Indexed:    indexed,
					Class:      FieldClass(owner, mutexName, indexed),
					Pos:        field,
				}
			}
		}
	}
}

// guardAnnotation extracts the "guarded by" match from a field's doc or
// line comment, preferring the line comment (closest to the field).
func guardAnnotation(field *ast.Field) []string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m
		}
	}
	return nil
}

// guardIsMutex checks the annotation target's type: a mutex, or (for
// "[*]" guards) a slice/array of mutexes.
func guardIsMutex(t types.Type, indexed bool) bool {
	if indexed {
		switch u := t.Underlying().(type) {
		case *types.Slice:
			return isSyncLocker(u.Elem())
		case *types.Array:
			return isSyncLocker(u.Elem())
		default:
			return false
		}
	}
	return isSyncLocker(t)
}

// FuncDecls maps every function and method declared in the pass (with a
// body) to its declaration, the substrate of the same-package call-graph
// walks.
func FuncDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// CalleeOf resolves a call to its *types.Func whether it is a method call
// or a direct (possibly package-qualified) function call; nil for
// indirect calls through function values, conversions, and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	if fn, _ := astq.MethodCallee(info, call); fn != nil {
		return fn
	}
	return astq.PkgFunc(info, call)
}

// ReceiverNamed returns the named type (behind any pointer) of a method's
// receiver, or nil for functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return astq.Named(sig.Recv().Type())
}

// MethodKey names a method as "<pkg>.<Type>.<Method>" for both concrete
// and interface receivers — the key format of lockorder's cross-package
// acquisition summaries. Functions return "<pkg>.<Func>".
func MethodKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if named := ReceiverNamed(fn); named != nil && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// BodyAcquires reports the strongest mode in which the function body
// directly acquires the given lock class, ignoring nothing: any Lock or
// RLock on the class anywhere in the body counts (a flow-insensitive
// under-approximation — "acquired somewhere" stands in for "held at the
// access", which is the convention the annotated code follows).
func BodyAcquires(info *types.Info, body *ast.BlockStmt, class Class) Mode {
	mode := ModeNone
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := AsLockOp(info, call)
		if !ok || !op.Acquire || op.Class != class {
			return true
		}
		if op.Mode > mode {
			mode = op.Mode
		}
		return true
	})
	return mode
}

// CallEdges returns every same-package function/method called from the
// body, with the call positions (used by both analyzers to build the
// package call graph).
func CallEdges(pass *framework.Pass, body *ast.BlockStmt) []CallSite {
	var out []CallSite
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := CalleeOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() != pass.Pkg {
			return true
		}
		out = append(out, CallSite{Callee: fn, Call: call})
		return true
	})
	return out
}

// CallSite is one resolved same-package call.
type CallSite struct {
	Callee *types.Func
	Call   *ast.CallExpr
}

// TrimPkg shortens a class name for diagnostics by dropping the common
// module prefix ("revnf/internal/serve.Engine.mu" → "serve.Engine.mu").
func TrimPkg(c Class) string {
	s := string(c)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
