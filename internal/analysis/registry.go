// Package analysis registers the revnfvet invariant suite: the analyzers
// that mechanically enforce the contracts PRs 1–2 established in prose.
// See DESIGN.md "Enforced invariants" for the invariant each pass protects
// and why it matters to the paper's guarantees.
package analysis

import (
	"revnf/internal/analysis/atomicword"
	"revnf/internal/analysis/floateq"
	"revnf/internal/analysis/framework"
	"revnf/internal/analysis/guardedby"
	"revnf/internal/analysis/ledgerapi"
	"revnf/internal/analysis/lockorder"
	"revnf/internal/analysis/norand"
	"revnf/internal/analysis/purepropose"
	"revnf/internal/analysis/walltime"
)

// All returns every registered analyzer, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		atomicword.Analyzer,
		floateq.Analyzer,
		guardedby.Analyzer,
		ledgerapi.Analyzer,
		lockorder.Analyzer,
		norand.Analyzer,
		purepropose.Analyzer,
		walltime.Analyzer,
	}
}

// ByName returns the named analyzers, or nil when any name is unknown.
func ByName(names ...string) []*framework.Analyzer {
	byName := make(map[string]*framework.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*framework.Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
