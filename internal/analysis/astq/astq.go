// Package astq holds small AST/type query helpers shared by the revnfvet
// analyzers.
package astq

import (
	"go/ast"
	"go/types"
)

// RootIdent returns the leftmost identifier of a selector/index/star/paren
// chain (for s.lambda[j][t-1] it returns s), or nil when the expression is
// not rooted in an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Named dereferences pointers and returns the named type, or nil.
func Named(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// PkgFunc resolves a call to a package-level function and returns it, or
// nil when the call is not a direct package-level function call (method
// calls and local closures return nil).
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// MethodCallee resolves a call to the *types.Func of its method, or nil
// when the call is not a method call. The second result is the receiver
// expression (the x in x.M(...)).
func MethodCallee(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return nil, nil
	}
	return fn, sel.X
}

// ImportedPackage returns the directly imported package with the given
// path, or nil.
func ImportedPackage(pkg *types.Package, path string) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}
