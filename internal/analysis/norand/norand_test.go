package norand_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/norand"
)

func TestNorand(t *testing.T) {
	analysistest.Run(t, "testdata", norand.Analyzer, "a", "revnf/cmd/tool",
		"revnf/internal/chaos")
}
