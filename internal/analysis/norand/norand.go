// Package norand forbids the global math/rand (and math/rand/v2) source
// in library packages.
//
// Invariant: every random draw in library code flows from an injected
// *rand.Rand, so a run is a pure function of its seeds and golden decision
// traces stay bit-identical. The package-level math/rand functions draw
// from the process-global source (and math/rand/v2's cannot be seeded at
// all), which silently breaks reproducibility. Constructors (rand.New,
// rand.NewSource, rand.NewZipf, rand.NewPCG, rand.NewChaCha8) are allowed:
// building a deterministic generator from an explicit seed is exactly the
// injected pattern. Commands and examples are exempt (they own their
// seeds); test files are never loaded by the revnfvet driver.
package norand

import (
	"go/ast"
	"go/types"
	"strings"

	"revnf/internal/analysis/framework"
)

// AllowedPkgPrefixes exempts binaries and examples: package paths with one
// of these prefixes may use the global source. The driver may override it.
var AllowedPkgPrefixes = []string{"revnf/cmd/", "revnf/examples/"}

// constructors are the package-level functions that build generators from
// explicit state rather than drawing from the global source.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// Analyzer is the norand pass.
var Analyzer = &framework.Analyzer{
	Name: "norand",
	Doc:  "forbid the global math/rand source in library packages; inject a *rand.Rand",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, prefix := range AllowedPkgPrefixes {
		if strings.HasPrefix(pass.Pkg.Path()+"/", prefix) {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // *rand.Rand method — the injected pattern
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"use of global %s.%s in library package %s breaks trace reproducibility; draw from an injected *rand.Rand",
				fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil
}
