// Package a is a library package: the global math/rand source is banned.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraw() int {
	return rand.Intn(6) // want `use of global math/rand\.Intn`
}

func globalSeed() {
	rand.Seed(42) // want `use of global math/rand\.Seed`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `use of global math/rand\.Shuffle`
}

func globalV2() float64 {
	return randv2.Float64() // want `use of global math/rand/v2\.Float64`
}

// injectedDraw is the blessed pattern: every draw comes from an explicit
// generator, so nothing below should be flagged.
func injectedDraw(rng *rand.Rand) int {
	return rng.Intn(6)
}

func construct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func constructV2(a, b uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(a, b))
}
