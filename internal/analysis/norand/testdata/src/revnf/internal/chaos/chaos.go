// Package chaos impersonates revnf/internal/chaos, a library package: the
// injector's two RNG streams are built from explicit seeds, so every draw
// must flow from an injected *rand.Rand — the global source is banned.
package chaos

import "math/rand"

// streams is the blessed pattern: two generators from explicit seeds.
func streams(seed int64) (*rand.Rand, *rand.Rand) {
	return rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed + 1))
}

func draw(rng *rand.Rand, rate float64) bool {
	return rng.Float64() < rate
}

func globalDraw(rate float64) bool {
	return rand.Float64() < rate // want `use of global math/rand\.Float64`
}
