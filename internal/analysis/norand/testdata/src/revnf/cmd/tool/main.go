// Command tool sits under revnf/cmd/, which owns its seeds: the global
// source is allowed here, so nothing in this file is flagged.
package main

import "math/rand"

func main() {
	rand.Seed(1)
	_ = rand.Intn(6)
}
