// Package gbclean is the non-flagging guardedby suite: annotated fields
// whose every access follows the locking discipline, so the analyzer must
// stay silent.
package gbclean

import "sync"

// Store mirrors the trace ring's shape: one mutex over everything.
type Store struct {
	mu sync.Mutex

	entries map[int]string // guarded by mu
	count   int            // guarded by mu

	capacity int // immutable after construction; deliberately unannotated
}

// NewStore exercises the constructor exemption end to end.
func NewStore(capacity int) *Store {
	s := &Store{entries: make(map[int]string)}
	s.count = 0
	s.capacity = capacity
	return s
}

// Put locks, writes, and delegates to a locked helper.
func (s *Store) Put(k int, v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = v
	s.bumpLocked()
}

// bumpLocked is reached only from holders.
func (s *Store) bumpLocked() {
	s.count++
}

// Len locks for a read.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Capacity reads immutable config without the lock: unannotated, clean.
func (s *Store) Capacity() int { return s.capacity }

// Sched mirrors the dual-price schedulers: RWMutex, concurrent readers.
type Sched struct {
	mu     sync.RWMutex
	lambda [][]float64 // guarded by mu
	base   int         // guarded by mu
}

// Propose reads prices under the read lock, via a helper.
func (s *Sched) Propose(j, t int) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.priceLocked(j, t)
}

func (s *Sched) priceLocked(j, t int) float64 {
	return s.lambda[j][t-s.base]
}

// Commit updates prices under the write lock.
func (s *Sched) Commit(j, t int, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lambda[j][t-s.base] = v
}

// AdvanceWindow rewrites the window under the write lock.
func (s *Sched) AdvanceWindow(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base <= s.base {
		return
	}
	s.base = base
	for j := range s.lambda {
		for t := range s.lambda[j] {
			s.lambda[j][t] = 0
		}
	}
}
