// Package gb exercises the guardedby invariant: flagged accesses to
// fields annotated "guarded by <mu>".
package gb

import "sync"

// Engine mimics the serve engine's shape: a mutex, guarded books, and a
// mix of locked entry points, xxxLocked helpers, and buggy accessors.
type Engine struct {
	mu sync.Mutex

	slot    int            // guarded by mu
	revenue float64        // guarded by mu
	books   map[int]string // guarded by mu

	workers int // unguarded config, free to read
}

// Tick locks correctly and may touch everything.
func (e *Engine) Tick() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slot++
	e.advanceLocked()
}

// advanceLocked is called only by lock holders: accepted.
func (e *Engine) advanceLocked() {
	e.revenue += float64(e.slot)
	e.books[e.slot] = "tick"
}

// Slot reads without the lock: flagged.
func (e *Engine) Slot() int {
	return e.slot // want `reads Engine\.slot without holding gb\.Engine\.mu`
}

// Reset writes without the lock: flagged.
func (e *Engine) Reset() {
	e.slot = 0    // want `writes Engine\.slot without holding gb\.Engine\.mu`
	e.revenue = 0 // want `writes Engine\.revenue without holding gb\.Engine\.mu`
}

// helper has no in-package callers and does not lock: it is an
// unprotected entry point, so its access is flagged.
func (e *Engine) helper() {
	delete(e.books, 0) // want `reads Engine\.books without holding gb\.Engine\.mu`
}

// Workers reads unguarded config: clean.
func (e *Engine) Workers() int { return e.workers }

// NewEngine builds the value locally: construction-time writes through a
// fresh composite literal are exempt.
func NewEngine() *Engine {
	e := &Engine{books: make(map[int]string)}
	e.slot = 1
	e.revenue = 0
	return e
}

// RW mimics the schedulers: an RWMutex with readers and writers.
type RW struct {
	mu     sync.RWMutex
	prices []float64 // guarded by mu
}

// Price reads under RLock: accepted.
func (r *RW) Price(i int) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.prices[i]
}

// BadBump writes under only the read lock: flagged as a read-lock write.
func (r *RW) BadBump(i int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.prices[i]++ // want `writes RW\.prices under the read lock of gb\.RW\.mu`
}

// Bump writes under the write lock: accepted.
func (r *RW) Bump(i int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prices[i]++
}

// readLockedHelper is reached only from Price-like read holders; its
// read is accepted, and the write path is still caught at BadBump.
func (r *RW) readLockedHelper(i int) float64 {
	return r.prices[i]
}

// Snapshot calls the helper under RLock: accepted.
func (r *RW) Snapshot() []float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]float64, len(r.prices))
	for i := range out {
		out[i] = r.readLockedHelper(i)
	}
	return out
}

// Rows mimics the ledger: a slice of row locks guarding a table.
type Rows struct {
	mus  []sync.RWMutex
	used [][]int // guarded by mus[*]
}

// Get locks its row: accepted.
func (r *Rows) Get(row, col int) int {
	r.mus[row].RLock()
	defer r.mus[row].RUnlock()
	return r.used[row][col]
}

// Put takes a row write lock: accepted.
func (r *Rows) Put(row, col, v int) {
	r.mus[row].Lock()
	defer r.mus[row].Unlock()
	r.used[row][col] = v
}

// Peek reads the table with no row lock: flagged.
func (r *Rows) Peek(row, col int) int {
	return r.used[row][col] // want `reads Rows\.used without holding gb\.Rows\.mus\[\*\]`
}

// BadAnnotation exercises the annotation validator.
type BadAnnotation struct {
	n int // guarded by nosuch // want `guarded-by annotation names "nosuch", which is not a field of BadAnnotation`
	m int // guarded by k // want `guarded-by annotation names BadAnnotation\.k, which is not a sync\.Mutex`
	k int
}
