package guardedby_test

import (
	"testing"

	"revnf/internal/analysis/analysistest"
	"revnf/internal/analysis/guardedby"
)

func TestGuardedby(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "gb", "gbclean")
}
