// Package guardedby enforces "guarded by" field annotations: every read
// or write of an annotated struct field must happen on a call path that
// acquires the named mutex.
//
// Invariant: the serving stack's shared state — the engine's books, the
// slot ledger rows, the dual-price vectors, the trace ring, the SLO and
// repair accounts — is protected by a documented mutex per field. PRs 2–7
// recorded that discipline in prose comments ("caller holds e.mu"); this
// pass machine-checks it, because the admission guarantees (serialized
// Commit order, conservation-safe ledger) are only as good as the locking
// that implements them, and `-race` soaks only sample the interleavings a
// static pass covers exhaustively.
//
// A field opts in with a doc or line comment:
//
//	slot int // guarded by mu
//	used [][]int // guarded by mus[*]
//
// where the guard is a sibling sync.Mutex/sync.RWMutex field ("[*]" names
// a slice/array of mutexes, any element of which counts). For every
// function in the package, the pass computes the mode in which the guard
// is held:
//
//   - a function that calls guard.Lock() holds it in write mode, one that
//     calls guard.RLock() in read mode (flow-insensitive: "acquired
//     somewhere in the body" stands in for "held at the access");
//   - a function that does not acquire the guard inherits the weakest
//     mode among its same-package callers (the xxxLocked helper
//     convention) — computed as a greatest fixpoint over the call graph,
//     so helpers reachable only from lock holders are accepted, and a
//     single unlocked caller taints the whole path;
//   - a function with no in-package callers and no acquisition holds
//     nothing: exported entry points must lock for themselves.
//
// Reads require at least read mode; writes require write mode — writing
// under an RLock is flagged as its own diagnostic, since two such writers
// race each other despite both "holding the lock".
//
// Accesses through a value freshly built in the same function from a
// composite literal (the constructor idiom: e := &Engine{...}; e.f = x)
// are exempt: an unpublished value has no concurrent observers.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"

	"revnf/internal/analysis/astq"
	"revnf/internal/analysis/framework"
	"revnf/internal/analysis/lockset"
)

// Analyzer is the guardedby pass.
var Analyzer = &framework.Analyzer{
	Name: "guardedby",
	Doc:  "accesses to fields annotated 'guarded by <mu>' must hold the mutex (reads: any mode, writes: the write lock)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	guards := lockset.ParseGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	decls := lockset.FuncDecls(pass)
	callers := reverseCallGraph(pass, decls)

	// One holder-mode fixpoint per distinct guard class.
	classes := make(map[lockset.Class]bool)
	for _, g := range guards {
		classes[g.Class] = true
	}
	modes := make(map[lockset.Class]map[*types.Func]lockset.Mode, len(classes))
	for class := range classes {
		modes[class] = holderModes(pass, decls, callers, class)
	}

	for fn, fd := range decls {
		checkBody(pass, fn, fd, guards, modes)
	}
	return nil
}

// reverseCallGraph maps each declared function to the set of same-package
// functions that call it.
func reverseCallGraph(pass *framework.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]map[*types.Func]bool {
	callers := make(map[*types.Func]map[*types.Func]bool)
	for caller, fd := range decls {
		for _, site := range lockset.CallEdges(pass, fd.Body) {
			if _, declared := decls[site.Callee]; !declared {
				continue
			}
			set := callers[site.Callee]
			if set == nil {
				set = make(map[*types.Func]bool)
				callers[site.Callee] = set
			}
			set[caller] = true
		}
	}
	return callers
}

// holderModes computes, for one guard class, the mode in which each
// function holds the guard: its own strongest acquisition if it has one,
// otherwise the weakest mode among its callers (greatest fixpoint,
// starting from the optimistic ModeWrite and lowering until stable).
// Functions nobody in the package calls, and that do not acquire, hold
// nothing.
func holderModes(pass *framework.Pass, decls map[*types.Func]*ast.FuncDecl, callers map[*types.Func]map[*types.Func]bool, class lockset.Class) map[*types.Func]lockset.Mode {
	direct := make(map[*types.Func]lockset.Mode, len(decls))
	modes := make(map[*types.Func]lockset.Mode, len(decls))
	for fn, fd := range decls {
		direct[fn] = lockset.BodyAcquires(pass.TypesInfo, fd.Body, class)
		if direct[fn] != lockset.ModeNone {
			modes[fn] = direct[fn]
		} else {
			modes[fn] = lockset.ModeWrite // optimistic start; lowered below
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			if direct[fn] != lockset.ModeNone {
				continue
			}
			inherited := lockset.ModeNone
			if cs := callers[fn]; len(cs) > 0 {
				inherited = lockset.ModeWrite
				for c := range cs {
					if modes[c] < inherited {
						inherited = modes[c]
					}
				}
			}
			if inherited < modes[fn] {
				modes[fn] = inherited
				changed = true
			}
		}
	}
	return modes
}

// checkBody flags guarded-field accesses in one function against the
// holder modes computed for its guards.
func checkBody(pass *framework.Pass, fn *types.Func, fd *ast.FuncDecl, guards map[*types.Var]*lockset.Guard, modes map[lockset.Class]map[*types.Func]lockset.Mode) {
	fresh := freshLocals(pass, fd, guards)
	writes := writeSelectors(pass, fd.Body, guards)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		g, ok := guards[v]
		if !ok {
			return true
		}
		if root := astq.RootIdent(sel.X); root != nil {
			if obj := pass.TypesInfo.Uses[root]; obj != nil && fresh[obj] {
				return true // unpublished constructor-local value
			}
		}
		have := modes[g.Class][fn]
		if writes[sel] {
			switch have {
			case lockset.ModeNone:
				pass.Reportf(sel.Pos(), "writes %s.%s without holding %s (field is marked 'guarded by %s')",
					g.Owner.Obj().Name(), v.Name(), lockset.TrimPkg(g.Class), guardSpelling(g))
			case lockset.ModeRead:
				pass.Reportf(sel.Pos(), "writes %s.%s under the read lock of %s; writes require the write lock",
					g.Owner.Obj().Name(), v.Name(), lockset.TrimPkg(g.Class))
			}
			return true
		}
		if have == lockset.ModeNone {
			pass.Reportf(sel.Pos(), "reads %s.%s without holding %s (field is marked 'guarded by %s')",
				g.Owner.Obj().Name(), v.Name(), lockset.TrimPkg(g.Class), guardSpelling(g))
		}
		return true
	})
}

func guardSpelling(g *lockset.Guard) string {
	if g.Indexed {
		return g.MutexField + "[*]"
	}
	return g.MutexField
}

// writeSelectors returns the guarded-field selectors written by the body:
// the selector at the root of an assignment LHS, an ++/-- operand, or an
// address-of operand (taking the address may publish a write path, so it
// is conservatively a write).
func writeSelectors(pass *framework.Pass, body *ast.BlockStmt, guards map[*types.Var]*lockset.Guard) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := rootSelector(e); ok {
			if v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
				if _, guarded := guards[v]; guarded {
					out[sel] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				mark(x.X)
			}
		}
		return true
	})
	return out
}

// rootSelector unwraps index/star/paren chains and returns the outermost
// selector: for s.lambda[j][t] it returns the s.lambda selector.
func rootSelector(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return x, true
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// freshLocals finds local variables initialized in this function from a
// composite literal of a guard-owning struct type (e := &Engine{...}):
// accesses through them are construction-time and exempt.
func freshLocals(pass *framework.Pass, fd *ast.FuncDecl, guards map[*types.Var]*lockset.Guard) map[types.Object]bool {
	owners := make(map[*types.Named]bool)
	for _, g := range guards {
		owners[g.Owner] = true
	}
	out := make(map[types.Object]bool)
	record := func(name *ast.Ident, rhs ast.Expr) {
		if rhs == nil || name.Name == "_" {
			return
		}
		if !isOwnerLiteral(pass.TypesInfo, rhs, owners) {
			return
		}
		if obj := pass.TypesInfo.Defs[name]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) != len(x.Values) {
				return true
			}
			for i, name := range x.Names {
				record(name, x.Values[i])
			}
		}
		return true
	})
	return out
}

// isOwnerLiteral reports whether the expression is a composite literal
// (optionally behind &) of one of the guard-owning types.
func isOwnerLiteral(info *types.Info, e ast.Expr, owners map[*types.Named]bool) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return false
	}
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	named := astq.Named(tv.Type)
	return named != nil && owners[named]
}
