package chain

import (
	"fmt"
	"sort"
	"sync"

	"revnf/internal/core"
)

// Scheduler is an online admission algorithm for chain requests,
// structurally parallel to core.Scheduler. The same concurrency contract
// applies: Decide couples decision and state update and must be
// serialized by the caller.
type Scheduler interface {
	// Name identifies the algorithm in results.
	Name() string
	// Scheme returns the redundancy scheme.
	Scheme() core.Scheme
	// Decide makes the online admission decision for one chain request.
	Decide(req Request, view core.CapacityView) (Placement, bool)
}

// TwoPhaseScheduler is the chain analogue of core.TwoPhaseScheduler: a
// side-effect-free Propose plus a state-mutating Commit/Abort, under the
// same concurrency rule (concurrent Propose when ConcurrentPropose reports
// true; Commit internally serialized, defining the state history). Every
// chain scheduler here implements it: the primal-dual pair guards λ with a
// reader/writer lock, the greedy pair is stateless.
type TwoPhaseScheduler interface {
	Scheduler
	// Propose computes the placement without mutating scheduler state.
	Propose(req Request, view core.CapacityView) (Placement, bool)
	// Commit applies the state update for an admitted proposal.
	Commit(req Request, p Placement)
	// Abort discards a proposal that could not be admitted.
	Abort(req Request, p Placement)
	// ConcurrentPropose reports whether Propose may run concurrently.
	ConcurrentPropose() bool
}

// OnsiteScheduler is the chain generalization of Algorithm 1: one dual
// price per (slot, cloudlet), an admission test comparing payment against
// the cheapest cloudlet's dual cost for the whole chain allocation, and
// the multiplicative update of Eq. (34) applied with the chain's total
// computing footprint. Propose reads λ under the read lock; Commit writes
// under the write lock.
type OnsiteScheduler struct {
	network *core.Network
	horizon int
	mu      sync.RWMutex
	lambda  [][]float64 // guarded by mu
}

// NewOnsiteScheduler creates the chain on-site primal-dual scheduler. It
// always enforces residual capacity (the evaluated variant).
func NewOnsiteScheduler(network *core.Network, horizon int) (*OnsiteScheduler, error) {
	if err := checkNetwork(network, horizon); err != nil {
		return nil, err
	}
	s := &OnsiteScheduler{
		network: network,
		horizon: horizon,
		lambda:  make([][]float64, len(network.Cloudlets)),
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	return s, nil
}

// Name implements Scheduler.
func (s *OnsiteScheduler) Name() string { return "pd-chain-onsite" }

// Scheme implements Scheduler.
func (s *OnsiteScheduler) Scheme() core.Scheme { return core.OnSite }

// Decide implements Scheduler: Propose immediately followed by Commit.
func (s *OnsiteScheduler) Decide(req Request, view core.CapacityView) (Placement, bool) {
	p, ok := s.Propose(req, view)
	if !ok {
		return Placement{}, false
	}
	s.Commit(req, p)
	return p, true
}

// Propose implements TwoPhaseScheduler: the argmin over cloudlets and the
// payment test, reading λ under the read lock.
func (s *OnsiteScheduler) Propose(req Request, view core.CapacityView) (Placement, bool) {
	if req.Arrival < 1 || req.End() > s.horizon || len(req.VNFs) == 0 {
		return Placement{}, false
	}
	bestCloudlet := -1
	var bestAlloc Allocation
	bestPrice := 0.0
	s.mu.RLock()
	for j, cl := range s.network.Cloudlets {
		alloc, err := OnsiteAllocation(s.network.Catalog, req.VNFs, cl.Reliability, req.Reliability)
		if err != nil {
			continue
		}
		units := alloc.Units(s.network.Catalog, req.VNFs)
		if view.ResidualWindow(j, req.Arrival, req.Duration) < units {
			continue
		}
		price := 0.0
		for t := req.Arrival; t <= req.End(); t++ {
			price += float64(units) * s.lambda[j][t-1]
		}
		if bestCloudlet < 0 || price < bestPrice {
			bestCloudlet, bestAlloc, bestPrice = j, alloc, price
		}
	}
	s.mu.RUnlock()
	if bestCloudlet < 0 || req.Payment-bestPrice <= 0 {
		return Placement{}, false
	}
	stages := make([]StagePlacement, len(req.VNFs))
	for k, f := range req.VNFs {
		stages[k] = StagePlacement{
			VNF:         f,
			Assignments: []core.Assignment{{Cloudlet: bestCloudlet, Instances: bestAlloc[k]}},
		}
	}
	return Placement{Request: req.ID, Scheme: core.OnSite, Stages: stages}, true
}

// Commit implements TwoPhaseScheduler: the Eq. (34) update with the
// chain's total footprint, under the write lock.
func (s *OnsiteScheduler) Commit(req Request, p Placement) {
	if len(p.Stages) == 0 {
		return
	}
	cloudlet := p.Stages[0].Assignments[0].Cloudlet
	units := 0
	for _, st := range p.Stages {
		for _, a := range st.Assignments {
			units += a.Units(s.network.Catalog[st.VNF].Demand)
		}
	}
	capj := float64(s.network.Cloudlets[cloudlet].Capacity)
	growth := 1 + float64(units)/capj
	additive := float64(units) * req.Payment / (float64(req.Duration) * capj)
	s.mu.Lock()
	for t := req.Arrival; t <= req.End(); t++ {
		s.lambda[cloudlet][t-1] = s.lambda[cloudlet][t-1]*growth + additive
	}
	s.mu.Unlock()
}

// Abort implements TwoPhaseScheduler; Propose acquires nothing.
func (s *OnsiteScheduler) Abort(Request, Placement) {}

// ConcurrentPropose implements TwoPhaseScheduler.
func (s *OnsiteScheduler) ConcurrentPropose() bool { return true }

// OffsiteScheduler is the chain generalization of Algorithm 2: the chain
// requirement is split into per-stage targets R^{1/K}, and each stage runs
// the dual-price accumulation of Algorithm 2 with its share of the
// payment. The chain is admitted only when every stage can be satisfied.
// Propose reads λ under the read lock; Commit writes under the write lock.
type OffsiteScheduler struct {
	network *core.Network
	horizon int
	mu      sync.RWMutex
	lambda  [][]float64 // guarded by mu
}

// NewOffsiteScheduler creates the chain off-site primal-dual scheduler.
func NewOffsiteScheduler(network *core.Network, horizon int) (*OffsiteScheduler, error) {
	if err := checkNetwork(network, horizon); err != nil {
		return nil, err
	}
	s := &OffsiteScheduler{
		network: network,
		horizon: horizon,
		lambda:  make([][]float64, len(network.Cloudlets)),
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	return s, nil
}

// Name implements Scheduler.
func (s *OffsiteScheduler) Name() string { return "pd-chain-offsite" }

// Scheme implements Scheduler.
func (s *OffsiteScheduler) Scheme() core.Scheme { return core.OffSite }

// Decide implements Scheduler: Propose immediately followed by Commit.
func (s *OffsiteScheduler) Decide(req Request, view core.CapacityView) (Placement, bool) {
	p, ok := s.Propose(req, view)
	if !ok {
		return Placement{}, false
	}
	s.Commit(req, p)
	return p, true
}

// Propose implements TwoPhaseScheduler: the staged dual-price accumulation
// without the updates, reading λ under the read lock.
func (s *OffsiteScheduler) Propose(req Request, view core.CapacityView) (Placement, bool) {
	if req.Arrival < 1 || req.End() > s.horizon || len(req.VNFs) == 0 {
		return Placement{}, false
	}
	targets, err := OffsiteStageTargets(req.Reliability, len(req.VNFs))
	if err != nil {
		return Placement{}, false
	}
	stagePay := req.Payment / float64(len(req.VNFs))
	// used excludes cloudlets claimed by earlier stages of this chain:
	// keeping stage sets disjoint (anti-affinity) removes the failure
	// correlation between stages, so the independent per-stage targets
	// R^{1/K} compose exactly.
	used := make(map[int]int, len(s.network.Cloudlets))
	stages := make([]StagePlacement, len(req.VNFs))
	s.mu.RLock()
	defer s.mu.RUnlock()
	for k, f := range req.VNFs {
		st, ok := s.placeStage(req, f, targets[k], stagePay, used, view)
		if !ok {
			return Placement{}, false
		}
		demand := s.network.Catalog[f].Demand
		for _, a := range st.Assignments {
			used[a.Cloudlet] += a.Units(demand)
		}
		stages[k] = st
	}
	return Placement{Request: req.ID, Scheme: core.OffSite, Stages: stages}, true
}

// Commit implements TwoPhaseScheduler: the per-stage Eq. (67) updates,
// under the write lock (a rejected chain leaves no trace because Propose
// never updates).
func (s *OffsiteScheduler) Commit(req Request, p Placement) {
	if len(p.Stages) == 0 {
		return
	}
	targets, err := OffsiteStageTargets(req.Reliability, len(p.Stages))
	if err != nil {
		return
	}
	stagePay := req.Payment / float64(len(p.Stages))
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, st := range p.Stages {
		s.updateDuals(req, st, targets[k], stagePay)
	}
}

// Abort implements TwoPhaseScheduler; Propose acquires nothing.
func (s *OffsiteScheduler) Abort(Request, Placement) {}

// ConcurrentPropose implements TwoPhaseScheduler.
func (s *OffsiteScheduler) ConcurrentPropose() bool { return true }

// placeStage runs one stage's Algorithm 2 accumulation. The caller must
// hold s.mu (either side) for the λ reads.
func (s *OffsiteScheduler) placeStage(req Request, vnf int, target, stagePay float64, used map[int]int, view core.CapacityView) (StagePlacement, bool) {
	rf := s.network.Catalog[vnf].Reliability
	demand := s.network.Catalog[vnf].Demand
	needWeight := core.RequirementWeight(target)
	type candidate struct {
		cloudlet int
		weight   float64
		price    float64
	}
	candidates := make([]candidate, 0, len(s.network.Cloudlets))
	for j, cl := range s.network.Cloudlets {
		w := core.OffsiteWeight(rf, cl.Reliability)
		sumLambda := 0.0
		for t := req.Arrival; t <= req.End(); t++ {
			sumLambda += s.lambda[j][t-1]
		}
		price := sumLambda / w
		if stagePay-needWeight*float64(demand)*price <= 0 {
			continue
		}
		candidates = append(candidates, candidate{cloudlet: j, weight: w, price: price})
	}
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].price != candidates[b].price {
			return candidates[a].price < candidates[b].price
		}
		return candidates[a].cloudlet < candidates[b].cloudlet
	})
	var assignments []core.Assignment
	totalWeight := 0.0
	for _, c := range candidates {
		if _, taken := used[c.cloudlet]; taken {
			continue // anti-affinity across stages
		}
		if view.ResidualWindow(c.cloudlet, req.Arrival, req.Duration) < demand {
			continue
		}
		assignments = append(assignments, core.Assignment{Cloudlet: c.cloudlet, Instances: 1})
		totalWeight += c.weight
		if core.WeightsSatisfy(totalWeight, needWeight) {
			return StagePlacement{VNF: vnf, Assignments: assignments}, true
		}
	}
	return StagePlacement{}, false
}

// updateDuals applies one stage's Eq. (67) updates. The caller must hold
// s.mu on the write side.
func (s *OffsiteScheduler) updateDuals(req Request, st StagePlacement, target, stagePay float64) {
	rf := s.network.Catalog[st.VNF].Reliability
	demand := float64(s.network.Catalog[st.VNF].Demand)
	needWeight := core.RequirementWeight(target)
	for _, a := range st.Assignments {
		w := core.OffsiteWeight(rf, s.network.Cloudlets[a.Cloudlet].Reliability)
		capj := float64(s.network.Cloudlets[a.Cloudlet].Capacity)
		ratio := needWeight * demand / (w * capj)
		growth := 1 + ratio
		additive := ratio * stagePay / float64(req.Duration)
		for t := req.Arrival; t <= req.End(); t++ {
			s.lambda[a.Cloudlet][t-1] = s.lambda[a.Cloudlet][t-1]*growth + additive
		}
	}
}

// GreedyOnsite is the chain version of the paper's greedy baseline: admit
// everything possible, preferring reliable cloudlets.
type GreedyOnsite struct {
	network *core.Network
	order   []int
}

// NewGreedyOnsite creates the greedy on-site chain baseline.
func NewGreedyOnsite(network *core.Network, horizon int) (*GreedyOnsite, error) {
	if err := checkNetwork(network, horizon); err != nil {
		return nil, err
	}
	return &GreedyOnsite{network: network, order: byReliability(network)}, nil
}

// Name implements Scheduler.
func (g *GreedyOnsite) Name() string { return "greedy-chain-onsite" }

// Scheme implements Scheduler.
func (g *GreedyOnsite) Scheme() core.Scheme { return core.OnSite }

// Decide implements Scheduler.
func (g *GreedyOnsite) Decide(req Request, view core.CapacityView) (Placement, bool) {
	return g.Propose(req, view)
}

// Propose implements TwoPhaseScheduler; it is a pure function of the
// request and the view.
func (g *GreedyOnsite) Propose(req Request, view core.CapacityView) (Placement, bool) {
	if len(req.VNFs) == 0 {
		return Placement{}, false
	}
	for _, j := range g.order {
		cl := g.network.Cloudlets[j]
		alloc, err := OnsiteAllocation(g.network.Catalog, req.VNFs, cl.Reliability, req.Reliability)
		if err != nil {
			break // reliability-sorted: later cloudlets fail too
		}
		units := alloc.Units(g.network.Catalog, req.VNFs)
		if view.ResidualWindow(j, req.Arrival, req.Duration) < units {
			continue
		}
		stages := make([]StagePlacement, len(req.VNFs))
		for k, f := range req.VNFs {
			stages[k] = StagePlacement{
				VNF:         f,
				Assignments: []core.Assignment{{Cloudlet: j, Instances: alloc[k]}},
			}
		}
		return Placement{Request: req.ID, Scheme: core.OnSite, Stages: stages}, true
	}
	return Placement{}, false
}

// Commit implements TwoPhaseScheduler (no scheduler state).
func (g *GreedyOnsite) Commit(Request, Placement) {}

// Abort implements TwoPhaseScheduler (no scheduler state).
func (g *GreedyOnsite) Abort(Request, Placement) {}

// ConcurrentPropose implements TwoPhaseScheduler.
func (g *GreedyOnsite) ConcurrentPropose() bool { return true }

// GreedyOffsite is the greedy off-site chain baseline: per-stage targets
// R^{1/K}, most reliable cloudlets first.
type GreedyOffsite struct {
	network *core.Network
	order   []int
}

// NewGreedyOffsite creates the greedy off-site chain baseline.
func NewGreedyOffsite(network *core.Network, horizon int) (*GreedyOffsite, error) {
	if err := checkNetwork(network, horizon); err != nil {
		return nil, err
	}
	return &GreedyOffsite{network: network, order: byReliability(network)}, nil
}

// Name implements Scheduler.
func (g *GreedyOffsite) Name() string { return "greedy-chain-offsite" }

// Scheme implements Scheduler.
func (g *GreedyOffsite) Scheme() core.Scheme { return core.OffSite }

// Decide implements Scheduler.
func (g *GreedyOffsite) Decide(req Request, view core.CapacityView) (Placement, bool) {
	return g.Propose(req, view)
}

// Propose implements TwoPhaseScheduler; it is a pure function of the
// request and the view.
func (g *GreedyOffsite) Propose(req Request, view core.CapacityView) (Placement, bool) {
	if len(req.VNFs) == 0 {
		return Placement{}, false
	}
	targets, err := OffsiteStageTargets(req.Reliability, len(req.VNFs))
	if err != nil {
		return Placement{}, false
	}
	used := make(map[int]int, len(g.network.Cloudlets))
	stages := make([]StagePlacement, len(req.VNFs))
	for k, f := range req.VNFs {
		rf := g.network.Catalog[f].Reliability
		demand := g.network.Catalog[f].Demand
		needWeight := core.RequirementWeight(targets[k])
		var assignments []core.Assignment
		totalWeight := 0.0
		for _, j := range g.order {
			if _, taken := used[j]; taken {
				continue // anti-affinity across stages
			}
			if view.ResidualWindow(j, req.Arrival, req.Duration) < demand {
				continue
			}
			assignments = append(assignments, core.Assignment{Cloudlet: j, Instances: 1})
			totalWeight += core.OffsiteWeight(rf, g.network.Cloudlets[j].Reliability)
			if core.WeightsSatisfy(totalWeight, needWeight) {
				break
			}
		}
		if !core.WeightsSatisfy(totalWeight, needWeight) {
			return Placement{}, false
		}
		for _, a := range assignments {
			used[a.Cloudlet] += demand
		}
		stages[k] = StagePlacement{VNF: f, Assignments: assignments}
	}
	return Placement{Request: req.ID, Scheme: core.OffSite, Stages: stages}, true
}

// Commit implements TwoPhaseScheduler (no scheduler state).
func (g *GreedyOffsite) Commit(Request, Placement) {}

// Abort implements TwoPhaseScheduler (no scheduler state).
func (g *GreedyOffsite) Abort(Request, Placement) {}

// ConcurrentPropose implements TwoPhaseScheduler.
func (g *GreedyOffsite) ConcurrentPropose() bool { return true }

func checkNetwork(network *core.Network, horizon int) error {
	if network == nil {
		return fmt.Errorf("%w: nil network", ErrBadChain)
	}
	if err := network.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadChain, err)
	}
	if horizon < 1 {
		return fmt.Errorf("%w: horizon %d", ErrBadChain, horizon)
	}
	return nil
}

func byReliability(network *core.Network) []int {
	order := make([]int, len(network.Cloudlets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := network.Cloudlets[order[a]].Reliability
		rb := network.Cloudlets[order[b]].Reliability
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}
