package chain

import (
	"errors"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func chainTraceConfig() TraceConfig {
	return TraceConfig{
		Requests:       80,
		Horizon:        20,
		MinLength:      1,
		MaxLength:      3,
		MinDuration:    1,
		MaxDuration:    5,
		MinRequirement: 0.85,
		MaxRequirement: 0.93,
		MaxPaymentRate: 10,
		H:              5,
	}
}

func chainInstance(t *testing.T) *Instance {
	t.Helper()
	n := testNetwork()
	trace, err := GenerateTrace(chainTraceConfig(), n.Catalog, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	inst := &Instance{Network: n, Horizon: 20, Trace: trace}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	return inst
}

func TestGenerateTrace(t *testing.T) {
	inst := chainInstance(t)
	prev := 0
	for i, r := range inst.Trace {
		if r.ID != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < prev {
			t.Error("trace not sorted by arrival")
		}
		prev = r.Arrival
		if r.Length() < 1 || r.Length() > 3 {
			t.Errorf("chain length %d out of range", r.Length())
		}
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := chainTraceConfig()
	cfg.Requests = 0
	if _, err := GenerateTrace(cfg, testNetwork().Catalog, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero requests err = %v", err)
	}
	cfg = chainTraceConfig()
	cfg.MaxLength = 0
	if _, err := GenerateTrace(cfg, testNetwork().Catalog, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad length err = %v", err)
	}
	cfg = chainTraceConfig()
	cfg.MaxDuration = 99
	if _, err := GenerateTrace(cfg, testNetwork().Catalog, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad duration err = %v", err)
	}
	cfg = chainTraceConfig()
	cfg.H = 0.5
	if _, err := GenerateTrace(cfg, testNetwork().Catalog, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad H err = %v", err)
	}
	cfg = chainTraceConfig()
	cfg.MinRequirement = 0
	if _, err := GenerateTrace(cfg, testNetwork().Catalog, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad requirement err = %v", err)
	}
	if _, err := GenerateTrace(chainTraceConfig(), nil, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty catalog err = %v", err)
	}
}

func TestRunAllChainSchedulers(t *testing.T) {
	inst := chainInstance(t)
	builds := []func() (Scheduler, error){
		func() (Scheduler, error) { return NewOnsiteScheduler(inst.Network, inst.Horizon) },
		func() (Scheduler, error) { return NewOffsiteScheduler(inst.Network, inst.Horizon) },
		func() (Scheduler, error) { return NewGreedyOnsite(inst.Network, inst.Horizon) },
		func() (Scheduler, error) { return NewGreedyOffsite(inst.Network, inst.Horizon) },
	}
	for _, build := range builds {
		sched, err := build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := Run(inst, sched)
		if err != nil {
			t.Fatalf("Run %s: %v", sched.Name(), err)
		}
		if res.Admitted+res.Rejected != len(inst.Trace) {
			t.Errorf("%s: decisions %d+%d != %d", sched.Name(), res.Admitted, res.Rejected, len(inst.Trace))
		}
		if res.Admitted == 0 {
			t.Errorf("%s admitted nothing", sched.Name())
		}
		// Revenue equals admitted payments.
		want := 0.0
		for _, d := range res.Decisions {
			if d.Admitted {
				want += inst.Trace[d.Request].Payment
			}
		}
		if !core.FloatEq(res.Revenue, want) {
			t.Errorf("%s: revenue %v != %v", sched.Name(), res.Revenue, want)
		}
		if rate := res.AdmissionRate(); rate <= 0 || rate > 1 {
			t.Errorf("%s: admission rate %v", sched.Name(), rate)
		}
	}
}

func TestRunErrors(t *testing.T) {
	inst := chainInstance(t)
	if _, err := Run(inst, nil); !errors.Is(err, ErrBadScheduler) {
		t.Errorf("nil scheduler err = %v", err)
	}
	if _, err := Run(nil, &OnsiteScheduler{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil instance err = %v", err)
	}
	broken := chainInstance(t)
	broken.Trace[3].ID = 99
	if _, err := Run(broken, &OnsiteScheduler{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad trace err = %v", err)
	}
}

func TestRunRejectsInvalidPlacement(t *testing.T) {
	inst := chainInstance(t)
	if _, err := Run(inst, badChainScheduler{}); !errors.Is(err, core.ErrBelowRequirement) &&
		!errors.Is(err, ErrBadPlacement) {
		t.Errorf("bad scheduler err = %v", err)
	}
}

type badChainScheduler struct{}

func (badChainScheduler) Name() string        { return "bad" }
func (badChainScheduler) Scheme() core.Scheme { return core.OnSite }
func (badChainScheduler) Decide(req Request, _ core.CapacityView) (Placement, bool) {
	stages := make([]StagePlacement, len(req.VNFs))
	for k, f := range req.VNFs {
		stages[k] = StagePlacement{VNF: f, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}}}
	}
	return Placement{Request: req.ID, Scheme: core.OnSite, Stages: stages}, true
}

func TestResultAdmissionRateEmpty(t *testing.T) {
	r := &Result{}
	if r.AdmissionRate() != 0 {
		t.Errorf("empty AdmissionRate = %v", r.AdmissionRate())
	}
}

// Integration property: over many seeds, every admitted chain placement
// meets its requirement (revalidated independently) and capacity is never
// violated (Run errors otherwise).
func TestChainSchedulersInvariantProperty(t *testing.T) {
	n := testNetwork()
	for seed := int64(1); seed <= 10; seed++ {
		trace, err := GenerateTrace(chainTraceConfig(), n.Catalog, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("GenerateTrace: %v", err)
		}
		inst := &Instance{Network: n, Horizon: 20, Trace: trace}
		for _, build := range []func() (Scheduler, error){
			func() (Scheduler, error) { return NewOnsiteScheduler(n, 20) },
			func() (Scheduler, error) { return NewOffsiteScheduler(n, 20) },
		} {
			sched, err := build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			res, err := Run(inst, sched)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, sched.Name(), err)
			}
			for _, d := range res.Decisions {
				if !d.Admitted {
					continue
				}
				req := inst.Trace[d.Request]
				if got := d.Placement.Availability(n, req); got+1e-9 < req.Reliability {
					t.Errorf("seed %d %s: request %d availability %v < %v",
						seed, sched.Name(), d.Request, got, req.Reliability)
				}
			}
		}
	}
}
