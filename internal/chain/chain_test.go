package chain

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func testNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "dpi", Demand: 2, Reliability: 0.9},
			{ID: 2, Name: "enc", Demand: 1, Reliability: 0.98},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 20, Reliability: 0.999},
			{ID: 1, Node: 1, Capacity: 15, Reliability: 0.99},
			{ID: 2, Node: 2, Capacity: 15, Reliability: 0.98},
			{ID: 3, Node: 3, Capacity: 10, Reliability: 0.97},
		},
	}
}

func TestRequestValidate(t *testing.T) {
	n := testNetwork()
	good := Request{ID: 0, VNFs: []int{0, 1}, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	if err := good.Validate(n, 10); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Request)
	}{
		{"empty chain", func(r *Request) { r.VNFs = nil }},
		{"unknown vnf", func(r *Request) { r.VNFs = []int{9} }},
		{"requirement 1", func(r *Request) { r.Reliability = 1 }},
		{"arrival 0", func(r *Request) { r.Arrival = 0 }},
		{"past horizon", func(r *Request) { r.Duration = 99 }},
		{"negative payment", func(r *Request) { r.Payment = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := good
			tt.mutate(&r)
			if err := r.Validate(n, 10); !errors.Is(err, ErrBadChain) {
				t.Errorf("Validate() = %v, want ErrBadChain", err)
			}
		})
	}
}

func TestOnsiteAllocation(t *testing.T) {
	n := testNetwork()
	alloc, err := OnsiteAllocation(n.Catalog, []int{0, 1, 2}, 0.999, 0.95)
	if err != nil {
		t.Fatalf("OnsiteAllocation: %v", err)
	}
	if len(alloc) != 3 {
		t.Fatalf("allocation length %d", len(alloc))
	}
	// Must meet the target.
	prod := 1.0
	for k, f := range []int{0, 1, 2} {
		rf := n.Catalog[f].Reliability
		prod *= 1 - math.Pow(1-rf, float64(alloc[k]))
	}
	if 0.999*prod+1e-12 < 0.95 {
		t.Errorf("allocation %v gives %v < 0.95", alloc, 0.999*prod)
	}
}

func TestOnsiteAllocationInfeasible(t *testing.T) {
	n := testNetwork()
	if _, err := OnsiteAllocation(n.Catalog, []int{0}, 0.9, 0.95); !errors.Is(err, ErrInfeasible) {
		t.Errorf("rc<req err = %v, want ErrInfeasible", err)
	}
	if _, err := OnsiteAllocation(n.Catalog, nil, 0.99, 0.9); !errors.Is(err, ErrBadChain) {
		t.Errorf("empty chain err = %v, want ErrBadChain", err)
	}
}

// Property: the greedy allocation meets the target and is locally minimal
// (removing one instance from any stage with more than one breaks it).
func TestOnsiteAllocationMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	catalog := testNetwork().Catalog
	for trial := 0; trial < 500; trial++ {
		length := 1 + rng.Intn(4)
		vnfs := make([]int, length)
		for k := range vnfs {
			vnfs[k] = rng.Intn(len(catalog))
		}
		rc := 0.97 + 0.029*rng.Float64()
		req := rc * (0.8 + 0.19*rng.Float64())
		alloc, err := OnsiteAllocation(catalog, vnfs, rc, req)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		avail := func(a Allocation) float64 {
			prod := 1.0
			for k, f := range vnfs {
				prod *= 1 - math.Pow(1-catalog[f].Reliability, float64(a[k]))
			}
			return rc * prod
		}
		if avail(alloc)+1e-12 < req {
			t.Fatalf("trial %d: allocation %v misses target", trial, alloc)
		}
		for k := range alloc {
			if alloc[k] <= 1 {
				continue
			}
			reduced := append(Allocation(nil), alloc...)
			reduced[k]--
			if avail(reduced) >= req+1e-9 {
				t.Fatalf("trial %d: allocation %v not minimal at stage %d", trial, alloc, k)
			}
		}
	}
}

func TestOffsiteStageTargets(t *testing.T) {
	targets, err := OffsiteStageTargets(0.9, 3)
	if err != nil {
		t.Fatalf("OffsiteStageTargets: %v", err)
	}
	prod := 1.0
	for _, x := range targets {
		prod *= x
	}
	if math.Abs(prod-0.9) > 1e-12 {
		t.Errorf("targets %v multiply to %v, want 0.9", targets, prod)
	}
	if _, err := OffsiteStageTargets(0.9, 0); !errors.Is(err, ErrBadChain) {
		t.Errorf("zero stages err = %v", err)
	}
	if _, err := OffsiteStageTargets(1.5, 2); !errors.Is(err, ErrBadChain) {
		t.Errorf("bad requirement err = %v", err)
	}
}

func TestPlacementAvailabilityOnsite(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 0, VNFs: []int{0, 1}, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 1}
	p := Placement{
		Request: 0,
		Scheme:  core.OnSite,
		Stages: []StagePlacement{
			{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}}},
			{VNF: 1, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}}},
		},
	}
	want := 0.999 * (1 - 0.05*0.05) * (1 - 0.1*0.1)
	if got := p.Availability(n, req); math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPlacementAvailabilityOffsiteDisjoint(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 0, VNFs: []int{0, 2}, Reliability: 0.85, Arrival: 1, Duration: 1, Payment: 1}
	p := Placement{
		Request: 0,
		Scheme:  core.OffSite,
		Stages: []StagePlacement{
			{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1}}},
			{VNF: 2, Assignments: []core.Assignment{{Cloudlet: 2, Instances: 1}, {Cloudlet: 3, Instances: 1}}},
		},
	}
	// Disjoint stages: product of stage availabilities.
	stage0 := 1 - (1-0.999*0.95)*(1-0.99*0.95)
	stage1 := 1 - (1-0.98*0.98)*(1-0.97*0.98)
	want := stage0 * stage1
	if got := p.Availability(n, req); math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
}

// Exact enumeration must handle the correlation when stages share a
// cloudlet. Stage-up events are increasing in the independent component
// states, so they are positively associated (FKG): the exact value is at
// least the naive independent product, with the shared cloudlet's rc
// factor paid once instead of once per stage.
func TestPlacementAvailabilityOffsiteShared(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 0, VNFs: []int{0, 2}, Reliability: 0.5, Arrival: 1, Duration: 1, Payment: 1}
	shared := Placement{
		Request: 0,
		Scheme:  core.OffSite,
		Stages: []StagePlacement{
			{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 1, Instances: 1}}},
			{VNF: 2, Assignments: []core.Assignment{{Cloudlet: 1, Instances: 1}}},
		},
	}
	got := shared.Availability(n, req)
	// Exact: both stages live in cloudlet 1 → rc·rf0·rf2.
	want := 0.99 * 0.95 * 0.98
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("shared availability = %v, want exact %v", got, want)
	}
	naive := (0.99 * 0.95) * (0.99 * 0.98)
	if got < naive {
		t.Errorf("exact %v below naive independent product %v; positive association violated", got, naive)
	}
}

// Property: exact enumeration agrees with Monte-Carlo sampling on random
// overlapping placements.
func TestExactAvailabilityMatchesMonteCarlo(t *testing.T) {
	n := testNetwork()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		stages := make([]StagePlacement, 2)
		for k := range stages {
			vnf := rng.Intn(len(n.Catalog))
			cls := rng.Perm(len(n.Cloudlets))[:1+rng.Intn(3)]
			var as []core.Assignment
			for _, c := range cls {
				as = append(as, core.Assignment{Cloudlet: c, Instances: 1})
			}
			stages[k] = StagePlacement{VNF: vnf, Assignments: as}
		}
		p := Placement{Request: 0, Scheme: core.OffSite, Stages: stages}
		req := Request{ID: 0, VNFs: []int{stages[0].VNF, stages[1].VNF}, Reliability: 0.01, Arrival: 1, Duration: 1, Payment: 1}
		exact := p.Availability(n, req)
		// Monte Carlo.
		const trials = 200000
		up := 0
		for s := 0; s < trials; s++ {
			clUp := make([]bool, len(n.Cloudlets))
			for j := range clUp {
				clUp[j] = rng.Float64() < n.Cloudlets[j].Reliability
			}
			chainUp := true
			for _, st := range p.Stages {
				rf := n.Catalog[st.VNF].Reliability
				alive := false
				for _, a := range st.Assignments {
					if clUp[a.Cloudlet] && rng.Float64() < rf {
						alive = true
						break
					}
				}
				if !alive {
					chainUp = false
					break
				}
			}
			if chainUp {
				up++
			}
		}
		mc := float64(up) / trials
		if math.Abs(exact-mc) > 0.005 {
			t.Errorf("trial %d: exact %v vs Monte-Carlo %v", trial, exact, mc)
		}
	}
}

func TestPlacementValidateErrors(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 1, VNFs: []int{0, 1}, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 1}
	good := func() Placement {
		return Placement{
			Request: 1,
			Scheme:  core.OnSite,
			Stages: []StagePlacement{
				{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}}},
				{VNF: 1, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}}},
			},
		}
	}
	if err := good().Validate(n, req); err != nil {
		t.Fatalf("good placement rejected: %v", err)
	}
	tests := []struct {
		name    string
		mutate  func(*Placement)
		wantErr error
	}{
		{"wrong request", func(p *Placement) { p.Request = 9 }, ErrBadPlacement},
		{"missing stage", func(p *Placement) { p.Stages = p.Stages[:1] }, ErrBadPlacement},
		{"wrong vnf", func(p *Placement) { p.Stages[0].VNF = 2 }, ErrBadPlacement},
		{"unplaced stage", func(p *Placement) { p.Stages[1].Assignments = nil }, ErrBadPlacement},
		{"unknown cloudlet", func(p *Placement) { p.Stages[0].Assignments[0].Cloudlet = 99 }, ErrBadPlacement},
		{"zero instances", func(p *Placement) { p.Stages[0].Assignments[0].Instances = 0 }, ErrBadPlacement},
		{
			"on-site spanning cloudlets",
			func(p *Placement) { p.Stages[1].Assignments[0].Cloudlet = 1 },
			ErrBadPlacement,
		},
		{
			"bad scheme",
			func(p *Placement) { p.Scheme = core.Scheme(9) },
			ErrBadPlacement,
		},
		{
			"below requirement",
			func(p *Placement) {
				p.Stages[0].Assignments[0].Instances = 1
				p.Stages[1].Assignments[0].Instances = 1
			},
			core.ErrBelowRequirement,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good()
			tt.mutate(&p)
			if err := p.Validate(n, req); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlacementValidateOffsiteMultiInstance(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 0, VNFs: []int{0}, Reliability: 0.5, Arrival: 1, Duration: 1, Payment: 1}
	p := Placement{
		Request: 0,
		Scheme:  core.OffSite,
		Stages: []StagePlacement{
			{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}}},
		},
	}
	if err := p.Validate(n, req); !errors.Is(err, ErrBadPlacement) {
		t.Errorf("off-site multi-instance err = %v, want ErrBadPlacement", err)
	}
}

func TestUnitsPerCloudlet(t *testing.T) {
	n := testNetwork()
	p := Placement{
		Request: 0,
		Scheme:  core.OffSite,
		Stages: []StagePlacement{
			{VNF: 0, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1}}},
			{VNF: 1, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}}},
		},
	}
	units := p.UnitsPerCloudlet(n.Catalog)
	if units[0] != 3 || units[1] != 1 { // cloudlet 0: fw(1)+dpi(2), cloudlet 1: fw(1)
		t.Errorf("UnitsPerCloudlet = %v", units)
	}
}
