package chain

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

// Errors returned by the runner and generator.
var (
	ErrBadInstance  = errors.New("chain: invalid instance")
	ErrBadScheduler = errors.New("chain: nil scheduler")
	ErrBadConfig    = errors.New("chain: invalid configuration")
)

// Instance bundles a chain simulation input.
type Instance struct {
	// Network holds the catalog and cloudlets.
	Network *core.Network
	// Horizon is T.
	Horizon int
	// Trace is the chain request stream in arrival order.
	Trace []Request
}

// Validate checks the network and every request.
func (in *Instance) Validate() error {
	if in == nil || in.Network == nil {
		return fmt.Errorf("%w: nil", ErrBadInstance)
	}
	if err := in.Network.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if in.Horizon < 1 {
		return fmt.Errorf("%w: horizon %d", ErrBadInstance, in.Horizon)
	}
	for i, r := range in.Trace {
		if r.ID != i {
			return fmt.Errorf("%w: request at index %d has ID %d", ErrBadInstance, i, r.ID)
		}
		if err := r.Validate(in.Network, in.Horizon); err != nil {
			return fmt.Errorf("%w: %v", ErrBadInstance, err)
		}
	}
	return nil
}

// Decision records one chain admission outcome.
type Decision struct {
	// Request is the chain request ID; Admitted the outcome.
	Request  int
	Admitted bool
	// Placement is the footprint when admitted.
	Placement Placement
}

// Result summarizes one chain simulation run.
type Result struct {
	// Algorithm and Scheme identify the scheduler.
	Algorithm string
	Scheme    core.Scheme
	// Revenue is the summed payment of admitted chains.
	Revenue float64
	// Admitted and Rejected count decisions.
	Admitted, Rejected int
	// Decisions is the audit trail in arrival order.
	Decisions []Decision
	// Utilization is the mean used/capacity at the end of the run.
	Utilization float64
}

// AdmissionRate returns admitted / total decisions.
func (r *Result) AdmissionRate() float64 {
	total := r.Admitted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(total)
}

// Run feeds the trace to the scheduler in arrival order, validating every
// claimed placement (structure, scheme shape, availability) and reserving
// its footprint in the authoritative ledger. Chain schedulers have no
// violation licence: an overbooked placement is an error.
func Run(inst *Instance, sched Scheduler) (*Result, error) {
	if sched == nil {
		return nil, ErrBadScheduler
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	result := &Result{
		Algorithm: sched.Name(),
		Scheme:    sched.Scheme(),
		Decisions: make([]Decision, 0, len(inst.Trace)),
	}
	// Two-phase schedulers run Propose → validate → reserve → Commit, the
	// same protocol the concurrent serve engine uses; the serialized Decide
	// path stays for plain schedulers.
	twoPhase, _ := sched.(TwoPhaseScheduler)
	for _, req := range inst.Trace {
		var placement Placement
		var admitted bool
		if twoPhase != nil {
			placement, admitted = twoPhase.Propose(req, ledger)
		} else {
			placement, admitted = sched.Decide(req, ledger)
		}
		if !admitted {
			result.Rejected++
			result.Decisions = append(result.Decisions, Decision{Request: req.ID})
			continue
		}
		if err := placement.Validate(inst.Network, req); err != nil {
			return nil, fmt.Errorf("chain: scheduler %q request %d: %w", sched.Name(), req.ID, err)
		}
		for _, cu := range sortedUnitEntries(placement, inst.Network.Catalog) {
			if err := ledger.Reserve(cu.cloudlet, req.Arrival, req.Duration, cu.units); err != nil {
				return nil, fmt.Errorf("chain: scheduler %q request %d cloudlet %d: %w", sched.Name(), req.ID, cu.cloudlet, err)
			}
		}
		if twoPhase != nil {
			twoPhase.Commit(req, placement)
		}
		result.Admitted++
		result.Revenue += req.Payment
		result.Decisions = append(result.Decisions, Decision{Request: req.ID, Admitted: true, Placement: placement})
	}
	result.Utilization = ledger.Utilization()
	return result, nil
}

type cloudletUnits struct {
	cloudlet, units int
}

func sortedUnitEntries(p Placement, catalog []core.VNF) []cloudletUnits {
	units := p.UnitsPerCloudlet(catalog)
	out := make([]cloudletUnits, 0, len(units))
	for cl, u := range units {
		out = append(out, cloudletUnits{cloudlet: cl, units: u})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].cloudlet < out[b].cloudlet })
	return out
}

// TraceConfig controls GenerateTrace for chains.
type TraceConfig struct {
	// Requests is the number of chains.
	Requests int
	// Horizon is T.
	Horizon int
	// MinLength and MaxLength bound the chain length (stage count).
	MinLength, MaxLength int
	// MinDuration and MaxDuration bound durations in slots.
	MinDuration, MaxDuration int
	// MinRequirement and MaxRequirement bound the whole-chain R.
	MinRequirement, MaxRequirement float64
	// MaxPaymentRate and H define uniform payment rates as in the
	// single-VNF generator; payment = rate·d·(chain units at one instance
	// per stage)·R.
	MaxPaymentRate float64
	H              float64
}

// Validate checks the configuration.
func (c TraceConfig) Validate() error {
	if c.Requests < 1 || c.Horizon < 1 {
		return fmt.Errorf("%w: requests %d horizon %d", ErrBadConfig, c.Requests, c.Horizon)
	}
	if c.MinLength < 1 || c.MaxLength < c.MinLength {
		return fmt.Errorf("%w: length range [%d,%d]", ErrBadConfig, c.MinLength, c.MaxLength)
	}
	if c.MinDuration < 1 || c.MaxDuration < c.MinDuration || c.MaxDuration > c.Horizon {
		return fmt.Errorf("%w: duration range [%d,%d]", ErrBadConfig, c.MinDuration, c.MaxDuration)
	}
	if c.MinRequirement <= 0 || c.MaxRequirement >= 1 || c.MaxRequirement < c.MinRequirement {
		return fmt.Errorf("%w: requirement range [%v,%v]", ErrBadConfig, c.MinRequirement, c.MaxRequirement)
	}
	if c.MaxPaymentRate <= 0 || c.H < 1 {
		return fmt.Errorf("%w: pr_max %v H %v", ErrBadConfig, c.MaxPaymentRate, c.H)
	}
	return nil
}

// GenerateTrace draws a chain request trace against the catalog, sorted by
// arrival with IDs equal to positions.
func GenerateTrace(cfg TraceConfig, catalog []core.VNF, rng *rand.Rand) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrBadConfig)
	}
	prMin := cfg.MaxPaymentRate / cfg.H
	out := make([]Request, cfg.Requests)
	for i := range out {
		length := cfg.MinLength + rng.Intn(cfg.MaxLength-cfg.MinLength+1)
		vnfs := make([]int, length)
		baseUnits := 0
		for k := range vnfs {
			vnfs[k] = rng.Intn(len(catalog))
			baseUnits += catalog[vnfs[k]].Demand
		}
		dur := cfg.MinDuration + rng.Intn(cfg.MaxDuration-cfg.MinDuration+1)
		arr := 1 + rng.Intn(cfg.Horizon-dur+1)
		req := cfg.MinRequirement + (cfg.MaxRequirement-cfg.MinRequirement)*rng.Float64()
		rate := prMin + (cfg.MaxPaymentRate-prMin)*rng.Float64()
		out[i] = Request{
			ID:          i,
			VNFs:        vnfs,
			Reliability: req,
			Arrival:     arr,
			Duration:    dur,
			Payment:     rate * float64(dur) * float64(baseUnits) * req,
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	for i := range out {
		out[i].ID = i
	}
	return out, nil
}
