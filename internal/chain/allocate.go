package chain

import (
	"fmt"
	"math"

	"revnf/internal/core"
)

// allocationCap bounds per-stage instance counts; targets within (0,1)
// always converge far earlier, so hitting the cap signals a numerical
// corner rather than a legitimate allocation.
const allocationCap = 64

// Allocation is the number of instances each chain stage receives (index
// parallel to Request.VNFs).
type Allocation []int

// Units returns the total computing units per slot the allocation costs.
func (a Allocation) Units(catalog []core.VNF, vnfs []int) int {
	total := 0
	for k, n := range a {
		total += n * catalog[vnfs[k]].Demand
	}
	return total
}

// OnsiteAllocation computes the cheapest per-stage instance counts that
// make an on-site chain meet requirement req inside a cloudlet with
// reliability rc:
//
//	rc · Π_k (1 - (1-r_k)^{n_k}) ≥ req.
//
// It is the chain generalization of the paper's closed-form N_ij (Eq. 3).
// The allocation starts at one instance per stage and repeatedly adds an
// instance to the stage with the best marginal gain in log-availability
// per computing unit — the classic greedy for series-system redundancy
// allocation, optimal when gains are concave in n_k (they are:
// log(1-(1-r)^n) has decreasing increments).
func OnsiteAllocation(catalog []core.VNF, vnfs []int, rc, req float64) (Allocation, error) {
	if rc <= req {
		return nil, fmt.Errorf("%w: cloudlet reliability %v ≤ requirement %v", ErrInfeasible, rc, req)
	}
	if len(vnfs) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrBadChain)
	}
	target := math.Log(req / rc) // ≤ 0; need Σ_k log avail_k ≥ target
	alloc := make(Allocation, len(vnfs))
	logAvail := make([]float64, len(vnfs))
	total := 0.0
	for k, f := range vnfs {
		alloc[k] = 1
		logAvail[k] = math.Log(catalog[f].Reliability)
		total += logAvail[k]
	}
	for steps := 0; total < target; steps++ {
		if steps > allocationCap*len(vnfs) {
			return nil, fmt.Errorf("%w: allocation did not converge for req %v at rc %v", ErrInfeasible, req, rc)
		}
		best, bestGainPerUnit := -1, 0.0
		var bestNewLog float64
		for k, f := range vnfs {
			rf := catalog[f].Reliability
			newLog := math.Log(1 - math.Pow(1-rf, float64(alloc[k]+1)))
			gain := newLog - logAvail[k]
			perUnit := gain / float64(catalog[f].Demand)
			if perUnit > bestGainPerUnit {
				best, bestGainPerUnit, bestNewLog = k, perUnit, newLog
			}
		}
		if best < 0 {
			// All stages are numerically at availability 1 yet the
			// product still misses the target: impossible when target<0,
			// but guard against pathological inputs.
			return nil, fmt.Errorf("%w: no stage can improve availability", ErrInfeasible)
		}
		total += bestNewLog - logAvail[best]
		logAvail[best] = bestNewLog
		alloc[best]++
	}
	trimAllocation(catalog, vnfs, alloc, logAvail, &total, target)
	return alloc, nil
}

// trimAllocation removes instances the greedy pass overshot past the
// target, most expensive stages first, leaving a locally minimal
// allocation: no single instance can be removed without breaking the
// requirement.
func trimAllocation(catalog []core.VNF, vnfs []int, alloc Allocation, logAvail []float64, total *float64, target float64) {
	order := make([]int, len(vnfs))
	for k := range order {
		order[k] = k
	}
	// Costliest stages first; ties by index for determinism.
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			di := catalog[vnfs[order[i]]].Demand
			dj := catalog[vnfs[order[j]]].Demand
			if dj > di || (dj == di && order[j] < order[i]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, k := range order {
		rf := catalog[vnfs[k]].Reliability
		for alloc[k] > 1 {
			newLog := math.Log(1 - math.Pow(1-rf, float64(alloc[k]-1)))
			if *total-logAvail[k]+newLog < target {
				break
			}
			*total += newLog - logAvail[k]
			logAvail[k] = newLog
			alloc[k]--
		}
	}
}

// OffsiteStageTargets splits a whole-chain requirement into per-stage
// availability targets. The chain needs Π_k A_k ≥ R; the equal-budget
// split assigns every stage A_k ≥ R^{1/K}, weighting the log-budget
// uniformly. Stages with cheap, reliable VNFs overshoot their targets and
// slack never hurts, so the split is safe if each target is individually
// attainable.
func OffsiteStageTargets(req float64, stages int) ([]float64, error) {
	if stages < 1 {
		return nil, fmt.Errorf("%w: %d stages", ErrBadChain, stages)
	}
	if req <= 0 || req >= 1 {
		return nil, fmt.Errorf("%w: requirement %v", ErrBadChain, req)
	}
	target := math.Pow(req, 1/float64(stages))
	out := make([]float64, stages)
	for k := range out {
		out[k] = target
	}
	return out, nil
}
