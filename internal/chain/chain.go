// Package chain extends the paper's single-VNF model to Service Function
// Chains (SFCs): requests that traverse an ordered sequence of VNFs
// (firewall → DPI → transcoder, …) and require the WHOLE chain to be
// available with probability at least R. Reliable SFC provisioning is the
// setting of several works the paper builds on ([7], [13], [16] in its
// bibliography) and its natural extension: a chain is up only when every
// stage has at least one live instance, so availability multiplies across
// stages and the backup budget must be split between them.
//
// The package provides the chain problem model, the redundancy-allocation
// algorithm that decides how many backups each stage gets (a greedy
// marginal-gain-per-unit rule on the log-availability), chain variants of
// the paper's primal-dual and greedy schedulers for both redundancy
// schemes, a trace generator, and a simulation runner that audits capacity
// and chain availability.
package chain

import (
	"errors"
	"fmt"
	"math"

	"revnf/internal/core"
)

// Errors returned by the chain model.
var (
	ErrBadChain     = errors.New("chain: malformed chain request")
	ErrBadPlacement = errors.New("chain: malformed placement")
	ErrInfeasible   = errors.New("chain: reliability requirement unattainable")
)

// Request is one SFC request: an ordered list of VNF types that must all
// be available for the service to function.
type Request struct {
	// ID identifies the request within a trace.
	ID int
	// VNFs lists the catalog IDs of the chain's stages, in order. The
	// order does not affect availability but is kept for routing
	// extensions.
	VNFs []int
	// Reliability is the whole-chain requirement R in (0, 1).
	Reliability float64
	// Arrival is the arrival slot (1-based); Duration the slot count.
	Arrival, Duration int
	// Payment is the revenue if admitted.
	Payment float64
}

// End returns the last slot covered by the request.
func (r Request) End() int { return r.Arrival + r.Duration - 1 }

// Length returns the number of stages.
func (r Request) Length() int { return len(r.VNFs) }

// Validate checks the request against the network and horizon.
func (r Request) Validate(n *core.Network, horizon int) error {
	if len(r.VNFs) == 0 {
		return fmt.Errorf("%w: request %d has no stages", ErrBadChain, r.ID)
	}
	for _, f := range r.VNFs {
		if f < 0 || f >= len(n.Catalog) {
			return fmt.Errorf("%w: request %d references VNF %d of %d", ErrBadChain, r.ID, f, len(n.Catalog))
		}
	}
	if r.Reliability <= 0 || r.Reliability >= 1 {
		return fmt.Errorf("%w: request %d requirement %v", ErrBadChain, r.ID, r.Reliability)
	}
	if r.Arrival < 1 || r.Duration < 1 || r.End() > horizon {
		return fmt.Errorf("%w: request %d window [%d,%d] horizon %d", ErrBadChain, r.ID, r.Arrival, r.End(), horizon)
	}
	if r.Payment < 0 {
		return fmt.Errorf("%w: request %d negative payment", ErrBadChain, r.ID)
	}
	return nil
}

// StagePlacement is the placement of one chain stage: the VNF and its
// per-cloudlet instance counts.
type StagePlacement struct {
	// VNF is the stage's catalog ID.
	VNF int
	// Assignments lists where the stage's instances go. On-site chains
	// put every stage in the same single cloudlet; off-site chains use
	// one instance per cloudlet per stage.
	Assignments []core.Assignment
}

// Placement is a chain admission's full resource footprint.
type Placement struct {
	// Request is the chain request ID.
	Request int
	// Scheme records the redundancy scheme.
	Scheme core.Scheme
	// Stages holds one StagePlacement per chain stage, in chain order.
	Stages []StagePlacement
}

// UnitsPerCloudlet accumulates the computing units the placement consumes
// in each cloudlet per slot.
func (p Placement) UnitsPerCloudlet(catalog []core.VNF) map[int]int {
	units := make(map[int]int)
	for _, st := range p.Stages {
		demand := catalog[st.VNF].Demand
		for _, a := range st.Assignments {
			units[a.Cloudlet] += a.Units(demand)
		}
	}
	return units
}

// StageAvailability returns the probability that stage st has at least one
// live instance, accounting for cloudlet failures.
func StageAvailability(n *core.Network, st StagePlacement) float64 {
	rf := n.Catalog[st.VNF].Reliability
	dead := 1.0
	for _, a := range st.Assignments {
		rc := n.Cloudlets[a.Cloudlet].Reliability
		// The cloudlet is up with probability rc; given up, all its
		// instances fail with probability (1-rf)^k.
		dead *= 1 - rc*(1-math.Pow(1-rf, float64(a.Instances)))
	}
	return 1 - dead
}

// Availability returns the whole-chain availability of the placement.
// On-site chains share one cloudlet, so the cloudlet survival factor
// appears once; off-site chains multiply independent stage availabilities.
func (p Placement) Availability(n *core.Network, r Request) float64 {
	if len(p.Stages) == 0 {
		return 0
	}
	switch p.Scheme {
	case core.OnSite:
		// All stages in a single cloudlet c: the chain is up when c is up
		// and every stage has a live instance.
		cl := p.Stages[0].Assignments[0].Cloudlet
		rc := n.Cloudlets[cl].Reliability
		prod := 1.0
		for _, st := range p.Stages {
			rf := n.Catalog[st.VNF].Reliability
			k := st.Assignments[0].Instances
			prod *= 1 - math.Pow(1-rf, float64(k))
		}
		return rc * prod
	case core.OffSite:
		if p.stagesShareCloudlets() {
			// Stages sharing a cloudlet are positively correlated through
			// that cloudlet's state (the rc factor should be paid once,
			// not once per stage), so the independent product would be a
			// conservative underestimate. Enumerate cloudlet up/down
			// states exactly instead.
			return p.exactOffsiteAvailability(n)
		}
		prod := 1.0
		for _, st := range p.Stages {
			prod *= StageAvailability(n, st)
		}
		return prod
	default:
		return 0
	}
}

// stagesShareCloudlets reports whether any cloudlet hosts instances of
// more than one stage.
func (p Placement) stagesShareCloudlets() bool {
	seen := make(map[int]bool)
	for _, st := range p.Stages {
		for _, a := range st.Assignments {
			if seen[a.Cloudlet] {
				return true
			}
			seen[a.Cloudlet] = true
		}
	}
	return false
}

// exactOffsiteAvailability computes the chain availability exactly by
// enumerating the up/down states of every involved cloudlet (2^d states
// for d distinct cloudlets), handling the correlation that arises when
// stages share cloudlets. The schedulers in this package produce
// disjoint-stage placements, so this path only serves externally
// constructed placements; d is capped to keep it total.
func (p Placement) exactOffsiteAvailability(n *core.Network) float64 {
	var cloudlets []int
	index := make(map[int]int)
	for _, st := range p.Stages {
		for _, a := range st.Assignments {
			if _, ok := index[a.Cloudlet]; !ok {
				index[a.Cloudlet] = len(cloudlets)
				cloudlets = append(cloudlets, a.Cloudlet)
			}
		}
	}
	const maxExact = 20
	if len(cloudlets) > maxExact {
		// Beyond enumeration range: return the conservative bound of
		// zero correlation benefit (treat fully shared stages as one).
		// In practice placements never involve this many cloudlets.
		return 0
	}
	total := 0.0
	for mask := 0; mask < 1<<len(cloudlets); mask++ {
		prob := 1.0
		for i, cl := range cloudlets {
			rc := n.Cloudlets[cl].Reliability
			if mask&(1<<i) != 0 {
				prob *= rc
			} else {
				prob *= 1 - rc
			}
		}
		if prob == 0 {
			continue
		}
		chainUp := 1.0
		for _, st := range p.Stages {
			rf := n.Catalog[st.VNF].Reliability
			dead := 1.0
			for _, a := range st.Assignments {
				if mask&(1<<index[a.Cloudlet]) == 0 {
					continue // cloudlet down in this state
				}
				dead *= math.Pow(1-rf, float64(a.Instances))
			}
			chainUp *= 1 - dead
		}
		total += prob * chainUp
	}
	return total
}

// Validate checks structure, scheme shape, and that availability meets the
// requirement.
func (p Placement) Validate(n *core.Network, r Request) error {
	if p.Request != r.ID {
		return fmt.Errorf("%w: placement for request %d checked against %d", ErrBadPlacement, p.Request, r.ID)
	}
	if len(p.Stages) != len(r.VNFs) {
		return fmt.Errorf("%w: %d stages for a %d-stage chain", ErrBadPlacement, len(p.Stages), len(r.VNFs))
	}
	for k, st := range p.Stages {
		if st.VNF != r.VNFs[k] {
			return fmt.Errorf("%w: stage %d places VNF %d, chain wants %d", ErrBadPlacement, k, st.VNF, r.VNFs[k])
		}
		if len(st.Assignments) == 0 {
			return fmt.Errorf("%w: stage %d unplaced", ErrBadPlacement, k)
		}
		seen := make(map[int]bool, len(st.Assignments))
		for _, a := range st.Assignments {
			if a.Cloudlet < 0 || a.Cloudlet >= len(n.Cloudlets) {
				return fmt.Errorf("%w: stage %d unknown cloudlet %d", ErrBadPlacement, k, a.Cloudlet)
			}
			if a.Instances < 1 {
				return fmt.Errorf("%w: stage %d %d instances", ErrBadPlacement, k, a.Instances)
			}
			if seen[a.Cloudlet] {
				return fmt.Errorf("%w: stage %d cloudlet %d twice", ErrBadPlacement, k, a.Cloudlet)
			}
			seen[a.Cloudlet] = true
		}
	}
	switch p.Scheme {
	case core.OnSite:
		cl := -1
		for k, st := range p.Stages {
			if len(st.Assignments) != 1 {
				return fmt.Errorf("%w: on-site stage %d spans %d cloudlets", ErrBadPlacement, k, len(st.Assignments))
			}
			if cl == -1 {
				cl = st.Assignments[0].Cloudlet
			} else if st.Assignments[0].Cloudlet != cl {
				return fmt.Errorf("%w: on-site chain spans cloudlets %d and %d", ErrBadPlacement, cl, st.Assignments[0].Cloudlet)
			}
		}
	case core.OffSite:
		for k, st := range p.Stages {
			for _, a := range st.Assignments {
				if a.Instances != 1 {
					return fmt.Errorf("%w: off-site stage %d has %d instances in cloudlet %d", ErrBadPlacement, k, a.Instances, a.Cloudlet)
				}
			}
		}
	default:
		return fmt.Errorf("%w: scheme %d", ErrBadPlacement, int(p.Scheme))
	}
	if got := p.Availability(n, r); got+1e-12 < r.Reliability {
		return fmt.Errorf("%w: availability %v < %v", core.ErrBelowRequirement, got, r.Reliability)
	}
	return nil
}
