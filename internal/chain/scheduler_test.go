package chain

import (
	"errors"
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

func newLedger(t *testing.T, n *core.Network, horizon int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.New(caps, horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	return l
}

func chainRequest(id int, vnfs []int, rel float64, pay float64) Request {
	return Request{ID: id, VNFs: vnfs, Reliability: rel, Arrival: 1, Duration: 2, Payment: pay}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewOnsiteScheduler(nil, 5); !errors.Is(err, ErrBadChain) {
		t.Errorf("nil network err = %v", err)
	}
	if _, err := NewOffsiteScheduler(testNetwork(), 0); !errors.Is(err, ErrBadChain) {
		t.Errorf("bad horizon err = %v", err)
	}
	if _, err := NewGreedyOnsite(nil, 5); !errors.Is(err, ErrBadChain) {
		t.Errorf("greedy nil network err = %v", err)
	}
	if _, err := NewGreedyOffsite(testNetwork(), -1); !errors.Is(err, ErrBadChain) {
		t.Errorf("greedy bad horizon err = %v", err)
	}
}

func TestOnsiteSchedulerAdmits(t *testing.T) {
	n := testNetwork()
	s, err := NewOnsiteScheduler(n, 10)
	if err != nil {
		t.Fatalf("NewOnsiteScheduler: %v", err)
	}
	if s.Name() != "pd-chain-onsite" || s.Scheme() != core.OnSite {
		t.Errorf("identity %q/%v", s.Name(), s.Scheme())
	}
	view := newLedger(t, n, 10)
	req := chainRequest(0, []int{0, 1, 2}, 0.92, 20)
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("chain rejected with empty duals")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	// All stages in one cloudlet.
	cl := p.Stages[0].Assignments[0].Cloudlet
	for _, st := range p.Stages {
		if st.Assignments[0].Cloudlet != cl {
			t.Error("on-site chain split across cloudlets")
		}
	}
}

func TestOnsiteSchedulerPricesOut(t *testing.T) {
	n := testNetwork()
	s, err := NewOnsiteScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewOnsiteScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	admitted := 0
	for i := 0; i < 100; i++ {
		req := Request{ID: i, VNFs: []int{0, 1}, Reliability: 0.9, Arrival: 1, Duration: 5, Payment: 15}
		if p, ok := s.Decide(req, view); ok {
			for cl, units := range p.UnitsPerCloudlet(n.Catalog) {
				if err := view.Reserve(cl, 1, 5, units); err != nil {
					t.Fatalf("scheduler overbooked: %v", err)
				}
			}
			admitted++
		}
	}
	if admitted == 0 || admitted == 100 {
		t.Fatalf("admitted %d of 100; expected pricing to engage", admitted)
	}
	cheap := Request{ID: 999, VNFs: []int{0}, Reliability: 0.9, Arrival: 1, Duration: 5, Payment: 1e-9}
	if _, ok := s.Decide(cheap, view); ok {
		t.Error("cheap request admitted against saturated duals")
	}
}

func TestOnsiteSchedulerRejectsInfeasible(t *testing.T) {
	n := testNetwork()
	s, _ := NewOnsiteScheduler(n, 5)
	view := newLedger(t, n, 5)
	// Requirement above all cloudlet reliabilities.
	req := chainRequest(0, []int{0}, 0.9999, 100)
	if _, ok := s.Decide(req, view); ok {
		t.Error("unattainable chain admitted")
	}
	// Out of horizon.
	bad := Request{ID: 1, VNFs: []int{0}, Reliability: 0.9, Arrival: 5, Duration: 3, Payment: 5}
	if _, ok := s.Decide(bad, view); ok {
		t.Error("out-of-horizon chain admitted")
	}
	// Empty chain.
	empty := Request{ID: 2, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := s.Decide(empty, view); ok {
		t.Error("empty chain admitted")
	}
}

func TestOffsiteSchedulerAdmitsDisjointStages(t *testing.T) {
	n := testNetwork()
	s, err := NewOffsiteScheduler(n, 10)
	if err != nil {
		t.Fatalf("NewOffsiteScheduler: %v", err)
	}
	if s.Name() != "pd-chain-offsite" || s.Scheme() != core.OffSite {
		t.Errorf("identity %q/%v", s.Name(), s.Scheme())
	}
	view := newLedger(t, n, 10)
	req := chainRequest(0, []int{0, 2}, 0.9, 20)
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("chain rejected with empty duals")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	seen := map[int]bool{}
	for _, st := range p.Stages {
		for _, a := range st.Assignments {
			if seen[a.Cloudlet] {
				t.Errorf("anti-affinity violated: cloudlet %d reused", a.Cloudlet)
			}
			seen[a.Cloudlet] = true
		}
	}
}

func TestOffsiteSchedulerRejectsWhenStagesCannotFit(t *testing.T) {
	n := testNetwork()
	s, _ := NewOffsiteScheduler(n, 5)
	view := newLedger(t, n, 5)
	// Fill all but one cloudlet; a 2-stage chain needing disjoint
	// cloudlets per stage cannot be placed if the lone free cloudlet
	// cannot satisfy a stage target alone... use a high requirement so
	// each stage needs multiple cloudlets.
	for j := 0; j < 3; j++ {
		if err := view.Reserve(j, 1, 5, n.Cloudlets[j].Capacity); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	req := chainRequest(0, []int{0, 1}, 0.97, 50)
	if _, ok := s.Decide(req, view); ok {
		t.Error("chain admitted without room for disjoint stages")
	}
}

func TestGreedyOnsiteChain(t *testing.T) {
	n := testNetwork()
	g, err := NewGreedyOnsite(n, 10)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	if g.Name() != "greedy-chain-onsite" || g.Scheme() != core.OnSite {
		t.Errorf("identity %q/%v", g.Name(), g.Scheme())
	}
	view := newLedger(t, n, 10)
	req := chainRequest(0, []int{0, 1}, 0.9, 10)
	p, ok := g.Decide(req, view)
	if !ok {
		t.Fatal("greedy rejected an easy chain")
	}
	// Most reliable cloudlet is 0.
	if p.Stages[0].Assignments[0].Cloudlet != 0 {
		t.Errorf("greedy chose cloudlet %d, want 0", p.Stages[0].Assignments[0].Cloudlet)
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if _, ok := g.Decide(Request{ID: 1, Reliability: 0.9, Arrival: 1, Duration: 1}, view); ok {
		t.Error("empty chain admitted")
	}
}

func TestGreedyOffsiteChain(t *testing.T) {
	n := testNetwork()
	g, err := NewGreedyOffsite(n, 10)
	if err != nil {
		t.Fatalf("NewGreedyOffsite: %v", err)
	}
	if g.Name() != "greedy-chain-offsite" || g.Scheme() != core.OffSite {
		t.Errorf("identity %q/%v", g.Name(), g.Scheme())
	}
	view := newLedger(t, n, 10)
	req := chainRequest(0, []int{0, 2}, 0.9, 10)
	p, ok := g.Decide(req, view)
	if !ok {
		t.Fatal("greedy rejected an easy chain")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	seen := map[int]bool{}
	for _, st := range p.Stages {
		for _, a := range st.Assignments {
			if seen[a.Cloudlet] {
				t.Errorf("greedy anti-affinity violated")
			}
			seen[a.Cloudlet] = true
		}
	}
	// Unattainable chain.
	hard := chainRequest(1, []int{0, 1, 2}, 0.999, 100)
	if _, ok := g.Decide(hard, view); ok {
		t.Error("unattainable chain admitted")
	}
}
