// Package metrics aggregates simulation results across seeds and renders
// the experiment tables the benchmark harness prints: per-figure series of
// revenue (and friends) with mean and spread, as aligned text or CSV.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Errors returned by the renderers.
var (
	ErrBadTable = errors.New("metrics: malformed table")
)

// Summary is the usual descriptive statistics of a sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean, Std, Min and Max describe the sample; Std is the sample
	// standard deviation (n-1 denominator).
	Mean, Std, Min, Max float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = total / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Table is a rendered experiment result: a title, a header row, and data
// rows of equal width.
type Table struct {
	// Title is printed above the table.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data; every row must match the header's width.
	Rows [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// validate checks rectangular shape.
func (t *Table) validate() error {
	if len(t.Header) == 0 {
		return fmt.Errorf("%w: no header", ErrBadTable)
	}
	for i, row := range t.Rows {
		if len(row) != len(t.Header) {
			return fmt.Errorf("%w: row %d has %d cells, header has %d", ErrBadTable, i, len(row), len(t.Header))
		}
	}
	return nil
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for c, h := range t.Header {
		widths[c] = len(h)
	}
	for _, row := range t.Rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[c]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	rule := make([]string, len(t.Header))
	for c := range rule {
		rule[c] = strings.Repeat("-", widths[c])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("metrics: render: %w", err)
	}
	return nil
}

// RenderCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) RenderCSV(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteString(strconv.Quote(cell))
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("metrics: render csv: %w", err)
	}
	return nil
}

// FormatFloat renders a float with sensible experiment-table precision.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// FormatMeanCI renders "mean ± ci".
func FormatMeanCI(s Summary) string {
	return FormatFloat(s.Mean) + " ± " + FormatFloat(s.CI95())
}
