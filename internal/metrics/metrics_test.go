package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample std with n-1: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.CI95() <= 0 {
		t.Errorf("CI95 = %v, want > 0", s.CI95())
	}
}

func TestSummarizeEdges(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	one := Summarize([]float64{3})
	if one.N != 1 || one.Mean != 3 || one.Std != 0 || one.CI95() != 0 {
		t.Errorf("singleton summary = %+v", one)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"requests", "revenue"},
	}
	tb.AddRow("100", "52.3")
	tb.AddRow("200", "104.7")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "requests", "revenue", "104.7", "--------"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("output has %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableRenderErrors(t *testing.T) {
	tb := &Table{}
	if err := tb.Render(&strings.Builder{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("no header err = %v", err)
	}
	tb = &Table{Header: []string{"a", "b"}}
	tb.AddRow("only-one")
	if err := tb.Render(&strings.Builder{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("ragged row err = %v", err)
	}
	if err := tb.RenderCSV(&strings.Builder{}); !errors.Is(err, ErrBadTable) {
		t.Errorf("CSV ragged row err = %v", err)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "2")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "name,value\n") {
		t.Errorf("missing header line:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma",2`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatFloat(3.14159); got != "3.1" {
		t.Errorf("FormatFloat = %q", got)
	}
	s := Summarize([]float64{10, 12, 14})
	out := FormatMeanCI(s)
	if !strings.Contains(out, "12.0") || !strings.Contains(out, "±") {
		t.Errorf("FormatMeanCI = %q", out)
	}
}
