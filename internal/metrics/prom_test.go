package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	fams := []PromMetric{
		Counter("revnfd_admissions_total", "Requests admitted.", 42),
		Gauge("revnfd_queue_depth", "Jobs queued.", 3),
		Counter("revnfd_rejections_total", "Requests rejected.", 7,
			LabelPair{"reason", "declined"}),
	}
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP revnfd_admissions_total Requests admitted.\n",
		"# TYPE revnfd_admissions_total counter\n",
		"revnfd_admissions_total 42\n",
		"# TYPE revnfd_queue_depth gauge\n",
		"revnfd_queue_depth 3\n",
		`revnfd_rejections_total{reason="declined"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromEscaping(t *testing.T) {
	fams := []PromMetric{
		Counter("m_total", "line1\nline2 back\\slash", 1,
			LabelPair{"path", `a"b\c` + "\nd"}),
	}
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP m_total line1\nline2 back\\slash`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `m_total{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

func TestWritePromRejectsMalformed(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, []PromMetric{{Name: "", Type: "counter"}}); !errors.Is(err, ErrBadMetric) {
		t.Errorf("empty name: err = %v", err)
	}
	if err := WriteProm(&sb, []PromMetric{{Name: "x", Type: "summary"}}); !errors.Is(err, ErrBadMetric) {
		t.Errorf("bad type: err = %v", err)
	}
}

func TestHistogramObserveAndMetric(t *testing.T) {
	h, err := NewHistogram(0.001, 0.01, 0.1)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.0725) > 1e-9 {
		t.Errorf("Sum = %v, want 5.0725", h.Sum())
	}
	var sb strings.Builder
	if err := WriteProm(&sb, []PromMetric{h.Metric("lat_seconds", "Latency.")}); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 2`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 5.0725`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	h, err := NewHistogram(1, 2)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Observe(1) // exactly on a bound: le="1" must include it
	var sb strings.Builder
	if err := WriteProm(&sb, []PromMetric{h.Metric("m", "m")}); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if !strings.Contains(sb.String(), `m_bucket{le="1"} 1`) {
		t.Errorf("bound not inclusive:\n%s", sb.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram(1, 10, 100)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %v, want 100", got)
	}
	h.Observe(1e6)
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("p100 with overflow = %v, want +Inf", got)
	}
}

func TestHistogramClone(t *testing.T) {
	h, err := NewHistogram(1, 2)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	h.Observe(1.5)
	c := h.Clone()
	h.Observe(0.5)
	if c.Count() != 1 || h.Count() != 2 {
		t.Errorf("clone not independent: clone %d, orig %d", c.Count(), h.Count())
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	cases := [][]float64{
		{},
		{1, 1},
		{2, 1},
		{math.Inf(1)},
		{math.NaN()},
	}
	for _, bounds := range cases {
		if _, err := NewHistogram(bounds...); !errors.Is(err, ErrBadHistogram) {
			t.Errorf("NewHistogram(%v): err = %v, want ErrBadHistogram", bounds, err)
		}
	}
}

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(1, 10, 3)
	want := []float64{1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bound[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
