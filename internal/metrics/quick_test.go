package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// Property (testing/quick): Summarize is shift-equivariant — adding a
// constant moves the mean, min and max by that constant and leaves the
// standard deviation unchanged.
func TestSummarizeShiftQuick(t *testing.T) {
	f := func(raw []float64, shiftSeed int8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		shift := float64(shiftSeed)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		a, b := Summarize(xs), Summarize(shifted)
		tol := 1e-6 * math.Max(1, math.Abs(a.Mean))
		return math.Abs(b.Mean-a.Mean-shift) < tol &&
			math.Abs(b.Min-a.Min-shift) < tol &&
			math.Abs(b.Max-a.Max-shift) < tol &&
			math.Abs(b.Std-a.Std) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): the summary's invariants hold for any sample:
// Min ≤ Mean ≤ Max, Std ≥ 0, and CI95 shrinks with more data.
func TestSummarizeInvariantsQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.N != len(xs) || s.Std < 0 {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
