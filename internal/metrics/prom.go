package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the Prometheus text exposition format (version
// 0.0.4) for the serving layer's /metrics endpoint. It is deliberately
// minimal: plain value types rendered on demand, no registry and no
// background goroutines. Thread safety is the caller's concern — the serve
// engine snapshots its counters under its own lock before rendering.

// Errors returned by the exposition renderer.
var (
	ErrBadMetric    = errors.New("metrics: malformed metric")
	ErrBadHistogram = errors.New("metrics: malformed histogram")
)

// LabelPair is one name="value" label on a sample.
type LabelPair struct {
	Name, Value string
}

// PromSample is one sample line of a metric family. Name may extend the
// family name with a suffix such as _bucket, _sum or _count; when empty the
// family name is used.
type PromSample struct {
	Name   string
	Labels []LabelPair
	Value  float64
}

// PromMetric is one metric family: a # HELP line, a # TYPE line, and its
// samples.
type PromMetric struct {
	// Name is the family name, e.g. "revnfd_admissions_total".
	Name string
	// Help is the one-line description.
	Help string
	// Type is one of "counter", "gauge", "histogram" or "untyped".
	Type string
	// Samples are the value lines, rendered in order.
	Samples []PromSample
}

// Counter builds a single-sample counter family.
func Counter(name, help string, value float64, labels ...LabelPair) PromMetric {
	return PromMetric{Name: name, Help: help, Type: "counter",
		Samples: []PromSample{{Labels: labels, Value: value}}}
}

// Gauge builds a single-sample gauge family.
func Gauge(name, help string, value float64, labels ...LabelPair) PromMetric {
	return PromMetric{Name: name, Help: help, Type: "gauge",
		Samples: []PromSample{{Labels: labels, Value: value}}}
}

// WriteProm renders the families in the Prometheus text exposition format.
func WriteProm(w io.Writer, families []PromMetric) error {
	var sb strings.Builder
	for _, fam := range families {
		if err := fam.validate(); err != nil {
			return err
		}
		sb.WriteString("# HELP ")
		sb.WriteString(fam.Name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(fam.Help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(fam.Name)
		sb.WriteByte(' ')
		sb.WriteString(fam.Type)
		sb.WriteByte('\n')
		for _, s := range fam.Samples {
			name := s.Name
			if name == "" {
				name = fam.Name
			}
			sb.WriteString(name)
			if len(s.Labels) > 0 {
				sb.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(l.Name)
					sb.WriteString(`="`)
					sb.WriteString(escapeLabel(l.Value))
					sb.WriteByte('"')
				}
				sb.WriteByte('}')
			}
			sb.WriteByte(' ')
			sb.WriteString(formatPromValue(s.Value))
			sb.WriteByte('\n')
		}
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return fmt.Errorf("metrics: write exposition: %w", err)
	}
	return nil
}

func (m PromMetric) validate() error {
	if m.Name == "" {
		return fmt.Errorf("%w: empty name", ErrBadMetric)
	}
	switch m.Type {
	case "counter", "gauge", "histogram", "untyped":
	default:
		return fmt.Errorf("%w: %q type %q", ErrBadMetric, m.Name, m.Type)
	}
	return nil
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Histogram is a fixed-bucket histogram matching the Prometheus data
// model: cumulative bucket counts, a sum and a total count. It is not safe
// for concurrent use; callers guard it with their own lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // counts[i] = observations ≤ bounds[i] (non-cumulative per bucket); last entry is the overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram creates a histogram with the given strictly ascending,
// finite bucket upper bounds. At least one bound is required; the +Inf
// overflow bucket is added automatically.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("%w: no buckets", ErrBadHistogram)
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			return nil, fmt.Errorf("%w: bound %v", ErrBadHistogram, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("%w: bounds not ascending at %v", ErrBadHistogram, b)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}, nil
}

// ExponentialBounds returns n strictly ascending bounds starting at first
// and multiplying by factor, for NewHistogram.
func ExponentialBounds(first, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	b := first
	for i := 0; i < n; i++ {
		out = append(out, b)
		b *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1):
// the smallest bucket bound whose cumulative count covers q of the
// observations, +Inf when only the overflow bucket does, and 0 for an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == len(h.bounds) {
				return math.Inf(1)
			}
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// Clone returns an independent copy, letting callers snapshot under a lock
// and render outside it.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), h.bounds...),
		counts: append([]uint64(nil), h.counts...),
		sum:    h.sum,
		count:  h.count,
	}
}

// Merge adds another histogram's observations into h. The two must have
// identical bucket bounds — the shard-merge case this exists for always
// builds its histograms from one bounds spec.
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.bounds) != len(h.bounds) {
		return fmt.Errorf("%w: merging %d buckets into %d", ErrBadHistogram, len(other.bounds), len(h.bounds))
	}
	for i, b := range other.bounds {
		if b != h.bounds[i] {
			return fmt.Errorf("%w: bucket bound mismatch at %d", ErrBadHistogram, i)
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.count += other.count
	return nil
}

// Metric renders the histogram as a Prometheus family with cumulative
// _bucket samples, _sum and _count.
func (h *Histogram) Metric(name, help string, labels ...LabelPair) PromMetric {
	fam := PromMetric{Name: name, Help: help, Type: "histogram"}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fam.Samples = append(fam.Samples, PromSample{
			Name:   name + "_bucket",
			Labels: append(append([]LabelPair(nil), labels...), LabelPair{"le", formatPromValue(bound)}),
			Value:  float64(cum),
		})
	}
	fam.Samples = append(fam.Samples,
		PromSample{
			Name:   name + "_bucket",
			Labels: append(append([]LabelPair(nil), labels...), LabelPair{"le", "+Inf"}),
			Value:  float64(h.count),
		},
		PromSample{Name: name + "_sum", Labels: labels, Value: h.sum},
		PromSample{Name: name + "_count", Labels: labels, Value: float64(h.count)},
	)
	return fam
}
