package revnf

import (
	"errors"
	"math/rand"
	"testing"
)

// TestNewSchedulerHappyPaths builds every (scheme, algorithm) pair the
// functional-options constructor supports and checks the scheduler
// identity, so a wiring mistake in the option plumbing cannot silently
// swap algorithms.
func TestNewSchedulerHappyPaths(t *testing.T) {
	inst, err := NewInstance(DefaultInstanceConfig(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		scheme Scheme
		opts   []SchedulerOption
		name   string
	}{
		{OnSite, []SchedulerOption{WithHorizon(inst.Horizon)}, "pd-onsite"},
		{OnSite, []SchedulerOption{WithAlgorithm(PrimalDual), WithHorizon(inst.Horizon)}, "pd-onsite"},
		{OnSite, []SchedulerOption{WithAlgorithm(RawPrimalDual), WithHorizon(inst.Horizon)}, "pd-onsite-raw"},
		{OnSite, []SchedulerOption{WithAlgorithm(Greedy)}, "greedy-onsite"},
		{OnSite, []SchedulerOption{WithAlgorithm(FirstFit)}, "firstfit-onsite"},
		{OnSite, []SchedulerOption{WithAlgorithm(Random), WithRNG(rand.New(rand.NewSource(1)))}, "random-onsite"},
		{OffSite, []SchedulerOption{WithHorizon(inst.Horizon)}, "pd-offsite"},
		{OffSite, []SchedulerOption{WithAlgorithm(Greedy)}, "greedy-offsite"},
		{Shared, []SchedulerOption{WithHorizon(inst.Horizon)}, "pd-shared"},
		{Shared, []SchedulerOption{WithHorizon(inst.Horizon), WithSharedPoolSize(8)}, "pd-shared"},
	}
	for _, tc := range cases {
		sched, err := NewScheduler(inst.Network, tc.scheme, tc.opts...)
		if err != nil {
			t.Errorf("NewScheduler(%v, %s): %v", tc.scheme, tc.name, err)
			continue
		}
		if sched.Name() != tc.name {
			t.Errorf("scheduler name = %q, want %q", sched.Name(), tc.name)
		}
		if sched.Scheme() != tc.scheme {
			t.Errorf("%s: scheme = %v, want %v", tc.name, sched.Scheme(), tc.scheme)
		}
	}
}

// TestNewSchedulerErrors pins the invalid configurations to ErrBadScheduler.
func TestNewSchedulerErrors(t *testing.T) {
	inst, err := NewInstance(DefaultInstanceConfig(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		desc   string
		scheme Scheme
		opts   []SchedulerOption
	}{
		{"pd without horizon", OnSite, nil},
		{"raw without horizon", OnSite, []SchedulerOption{WithAlgorithm(RawPrimalDual)}},
		{"pd-offsite without horizon", OffSite, nil},
		{"random without rng", OnSite, []SchedulerOption{WithAlgorithm(Random)}},
		{"raw under offsite", OffSite, []SchedulerOption{WithAlgorithm(RawPrimalDual), WithHorizon(10)}},
		{"firstfit under offsite", OffSite, []SchedulerOption{WithAlgorithm(FirstFit)}},
		{"random under offsite", OffSite, []SchedulerOption{WithAlgorithm(Random), WithRNG(rand.New(rand.NewSource(1)))}},
		{"unknown algorithm", OnSite, []SchedulerOption{WithAlgorithm("simplex")}},
		{"unknown scheme", Scheme(99), []SchedulerOption{WithHorizon(10)}},
		{"pd-shared without horizon", Shared, nil},
		{"greedy under shared", Shared, []SchedulerOption{WithAlgorithm(Greedy)}},
		{"raw under shared", Shared, []SchedulerOption{WithAlgorithm(RawPrimalDual), WithHorizon(10)}},
		{"shared with bad pool size", Shared, []SchedulerOption{WithHorizon(10), WithSharedPoolSize(-1)}},
	}
	for _, tc := range cases {
		if _, err := NewScheduler(inst.Network, tc.scheme, tc.opts...); !errors.Is(err, ErrBadScheduler) {
			t.Errorf("%s: err = %v, want ErrBadScheduler", tc.desc, err)
		}
	}
}

// TestAlgorithmPredicates pins Valid and AllowsViolations — revnfd keys its
// flag validation and -allow-violations default off them.
func TestAlgorithmPredicates(t *testing.T) {
	for _, a := range []Algorithm{PrimalDual, RawPrimalDual, Greedy, FirstFit, Random} {
		if !a.Valid() {
			t.Errorf("%q should be valid", a)
		}
		if got, want := a.AllowsViolations(), a == RawPrimalDual; got != want {
			t.Errorf("%q AllowsViolations = %v, want %v", a, got, want)
		}
	}
	if Algorithm("simplex").Valid() || Algorithm("").Valid() {
		t.Error("unknown algorithms must not validate")
	}
}

// TestNewSchedulerNilRecorder checks WithRecorder(nil) keeps the no-op
// default rather than injecting a nil interface the hot path would call.
func TestNewSchedulerNilRecorder(t *testing.T) {
	inst, err := NewInstance(DefaultInstanceConfig(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewScheduler(inst.Network, OnSite,
		WithHorizon(inst.Horizon), WithRecorder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(inst, sched); err != nil {
		t.Fatalf("run with nil recorder: %v", err)
	}
}

// TestSamplingRecorderFacade drives NewSamplingRecorder over a run and
// checks only the sampled IDs land in the store.
func TestSamplingRecorderFacade(t *testing.T) {
	inst, err := NewInstance(DefaultInstanceConfig(40), 3)
	if err != nil {
		t.Fatal(err)
	}
	store := NewTraceStore(64)
	sched, err := NewScheduler(inst.Network, OnSite,
		WithHorizon(inst.Horizon), WithRecorder(NewSamplingRecorder(store, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(inst, sched); err != nil {
		t.Fatal(err)
	}
	for id := range inst.Trace {
		_, ok := store.Get(id)
		if want := id%4 == 0; ok != want {
			t.Errorf("request %d traced=%v, want %v", id, ok, want)
		}
	}
}
