package revnf

import (
	"math/rand"

	"revnf/internal/chain"
	"revnf/internal/core"
)

// Service-function-chain extension: multi-VNF requests whose whole chain
// must be available with probability R. See internal/chain for the model
// and DESIGN.md for how the backup budget splits across stages.
type (
	// ChainRequest is one SFC request (ordered VNF stages + whole-chain R).
	ChainRequest = chain.Request
	// ChainPlacement is a chain admission's per-stage footprint.
	ChainPlacement = chain.Placement
	// ChainInstance bundles a chain simulation input.
	ChainInstance = chain.Instance
	// ChainScheduler is an online chain admission algorithm.
	ChainScheduler = chain.Scheduler
	// ChainResult is an audited chain simulation outcome.
	ChainResult = chain.Result
	// ChainTraceConfig configures the chain trace generator.
	ChainTraceConfig = chain.TraceConfig
	// ChainAllocation is the per-stage instance-count split.
	ChainAllocation = chain.Allocation
)

// NewChainOnsiteScheduler returns the chain generalization of Algorithm 1:
// the whole chain in one cloudlet, backups split across stages by greedy
// redundancy allocation, dual-price admission.
func NewChainOnsiteScheduler(n *Network, horizon int) (ChainScheduler, error) {
	return chain.NewOnsiteScheduler(n, horizon)
}

// NewChainOffsiteScheduler returns the chain generalization of Algorithm
// 2: per-stage targets R^(1/K) satisfied by dual-price cloudlet
// accumulation, stages kept on disjoint cloudlets.
func NewChainOffsiteScheduler(n *Network, horizon int) (ChainScheduler, error) {
	return chain.NewOffsiteScheduler(n, horizon)
}

// NewGreedyChainOnsite returns the greedy on-site chain baseline.
func NewGreedyChainOnsite(n *Network, horizon int) (ChainScheduler, error) {
	return chain.NewGreedyOnsite(n, horizon)
}

// NewGreedyChainOffsite returns the greedy off-site chain baseline.
func NewGreedyChainOffsite(n *Network, horizon int) (ChainScheduler, error) {
	return chain.NewGreedyOffsite(n, horizon)
}

// RunChains simulates a chain scheduler over the instance's trace with
// capacity and availability auditing.
func RunChains(inst *ChainInstance, sched ChainScheduler) (*ChainResult, error) {
	return chain.Run(inst, sched)
}

// GenerateChainTrace draws a reproducible chain request trace.
func GenerateChainTrace(cfg ChainTraceConfig, catalog []core.VNF, rng *rand.Rand) ([]ChainRequest, error) {
	return chain.GenerateTrace(cfg, catalog, rng)
}

// ChainOnsiteAllocation computes the cheapest per-stage backup split that
// lets an on-site chain meet req inside a cloudlet of reliability rc.
func ChainOnsiteAllocation(catalog []VNF, vnfs []int, rc, req float64) (ChainAllocation, error) {
	return chain.OnsiteAllocation(catalog, vnfs, rc, req)
}
