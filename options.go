package revnf

import (
	"errors"
	"fmt"
	"math/rand"

	"revnf/internal/baseline"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/shared"
	"revnf/internal/trace"
)

// ErrBadScheduler reports an invalid NewScheduler configuration: an
// unknown algorithm, an algorithm unavailable under the requested scheme,
// or a missing required option.
var ErrBadScheduler = errors.New("revnf: invalid scheduler configuration")

// Algorithm selects which admission algorithm NewScheduler builds. The
// values match the revnfd -algorithm flag.
type Algorithm string

// Available algorithms.
const (
	// PrimalDual is the paper's primal-dual algorithm in its evaluated
	// form: Algorithm 1 with capacity enforcement under OnSite, Algorithm 2
	// under OffSite. Requires WithHorizon.
	PrimalDual Algorithm = "pd"
	// RawPrimalDual is the theory-faithful Algorithm 1 (OnSite only): it
	// achieves the (1+a_max) competitive ratio but may overcommit cloudlets
	// within the bound of Lemma 8 — run it with RunAllowingViolations or
	// serve.Config.AllowViolations. Requires WithHorizon.
	RawPrimalDual Algorithm = "raw"
	// Greedy is the paper's comparison baseline: most reliable cloudlets
	// first, no opportunity-cost reasoning. Available under both schemes.
	Greedy Algorithm = "greedy"
	// FirstFit places each request in the lowest-ID feasible cloudlet
	// (OnSite only).
	FirstFit Algorithm = "firstfit"
	// Random places each request in a uniformly random feasible cloudlet
	// (OnSite only). Requires WithRNG for reproducibility.
	Random Algorithm = "random"
)

// Decision-trace types re-exported from internal/trace, so callers can
// inject recorders and read traces without importing internal packages.
type (
	// Recorder is the pluggable sink decision traces flow into; see
	// WithRecorder. Implementations must be safe for concurrent use.
	Recorder = trace.Recorder
	// DecisionTrace is the structured record of one request's admission
	// decision: candidates, dual costs, attempts, outcome.
	DecisionTrace = trace.DecisionTrace
	// ProposeTrace is one Propose evaluation within a DecisionTrace.
	ProposeTrace = trace.ProposeTrace
	// TraceCandidate is one cloudlet's evaluation within a ProposeTrace.
	TraceCandidate = trace.Candidate
	// TraceReason is the machine-readable decision/error code vocabulary.
	TraceReason = trace.Reason
	// TraceStore is the bounded ring-buffer store of recent traces.
	TraceStore = trace.Store
)

// NopRecorder drops everything; it is the default when no recorder is
// injected and costs one interface call per decision.
var NopRecorder = trace.Nop

// NewTraceStore returns a bounded ring-buffer trace store holding the most
// recent `capacity` traced decisions. The store implements Recorder.
func NewTraceStore(capacity int) *TraceStore { return trace.NewStore(capacity) }

// NewSamplingRecorder wraps a recorder so only one in `every` requests is
// traced, deterministically by request ID. every ≤ 1 returns inner
// unchanged.
func NewSamplingRecorder(inner Recorder, every int) Recorder {
	return trace.NewSampling(inner, every)
}

// schedulerConfig accumulates NewScheduler options.
type schedulerConfig struct {
	algorithm Algorithm
	horizon   int
	poolSize  int
	rec       trace.Recorder
	rng       *rand.Rand
}

// SchedulerOption configures NewScheduler.
type SchedulerOption func(*schedulerConfig)

// WithAlgorithm selects the admission algorithm (default PrimalDual).
func WithAlgorithm(a Algorithm) SchedulerOption {
	return func(c *schedulerConfig) { c.algorithm = a }
}

// WithHorizon sets the time horizon T in slots. The primal-dual algorithms
// size their dual-price tables by it and reject requests whose windows
// extend past it; the baselines ignore it.
func WithHorizon(h int) SchedulerOption {
	return func(c *schedulerConfig) { c.horizon = h }
}

// WithRecorder injects a decision-trace sink: every Propose records its
// candidate evaluations and verdict into it. Tracing never changes
// decisions; a nil recorder keeps the no-op default.
func WithRecorder(r Recorder) SchedulerOption {
	return func(c *schedulerConfig) { c.rec = r }
}

// WithRNG injects the random source the Random algorithm draws from; other
// algorithms ignore it. An explicit source keeps runs reproducible.
func WithRNG(rng *rand.Rand) SchedulerOption {
	return func(c *schedulerConfig) { c.rng = rng }
}

// WithSharedPoolSize sets the backup pool capacity k for the Shared
// scheme: up to k concurrently active requests share one pooled backup
// instance, and every admission is validated against the correlated-
// failure availability at full pool capacity. Other schemes ignore it.
// The default is core's DefaultSharedPoolSize.
func WithSharedPoolSize(k int) SchedulerOption {
	return func(c *schedulerConfig) { c.poolSize = k }
}

// NewScheduler builds an admission scheduler for the scheme from
// functional options:
//
//	sched, err := revnf.NewScheduler(inst.Network, revnf.OnSite,
//		revnf.WithHorizon(inst.Horizon),
//		revnf.WithRecorder(store))
//
// The default algorithm is PrimalDual (the paper's evaluated form).
func NewScheduler(n *Network, scheme Scheme, opts ...SchedulerOption) (Scheduler, error) {
	cfg := schedulerConfig{algorithm: PrimalDual}
	for _, opt := range opts {
		opt(&cfg)
	}
	switch scheme {
	case OnSite:
		return newOnsiteScheduler(n, cfg)
	case OffSite:
		return newOffsiteScheduler(n, cfg)
	case Shared:
		return newSharedScheduler(n, cfg)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %d", ErrBadScheduler, int(scheme))
	}
}

func newOnsiteScheduler(n *Network, cfg schedulerConfig) (Scheduler, error) {
	switch cfg.algorithm {
	case PrimalDual:
		if cfg.horizon < 1 {
			return nil, fmt.Errorf("%w: algorithm %q needs WithHorizon", ErrBadScheduler, cfg.algorithm)
		}
		return onsite.NewScheduler(n, cfg.horizon,
			onsite.WithCapacityEnforcement(), onsite.WithRecorder(cfg.rec))
	case RawPrimalDual:
		if cfg.horizon < 1 {
			return nil, fmt.Errorf("%w: algorithm %q needs WithHorizon", ErrBadScheduler, cfg.algorithm)
		}
		return onsite.NewScheduler(n, cfg.horizon, onsite.WithRecorder(cfg.rec))
	case Greedy:
		return baseline.NewGreedyOnsite(n, baseline.WithRecorder(cfg.rec))
	case FirstFit:
		return baseline.NewFirstFitOnsite(n, baseline.WithRecorder(cfg.rec))
	case Random:
		if cfg.rng == nil {
			return nil, fmt.Errorf("%w: algorithm %q needs WithRNG", ErrBadScheduler, cfg.algorithm)
		}
		return baseline.NewRandomOnsite(n, cfg.rng, baseline.WithRecorder(cfg.rec))
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadScheduler, cfg.algorithm)
	}
}

func newOffsiteScheduler(n *Network, cfg schedulerConfig) (Scheduler, error) {
	switch cfg.algorithm {
	case PrimalDual:
		if cfg.horizon < 1 {
			return nil, fmt.Errorf("%w: algorithm %q needs WithHorizon", ErrBadScheduler, cfg.algorithm)
		}
		return offsite.NewScheduler(n, cfg.horizon, offsite.WithRecorder(cfg.rec))
	case Greedy:
		return baseline.NewGreedyOffsite(n, baseline.WithRecorder(cfg.rec))
	case RawPrimalDual, FirstFit, Random:
		return nil, fmt.Errorf("%w: algorithm %q not available under the off-site scheme", ErrBadScheduler, cfg.algorithm)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadScheduler, cfg.algorithm)
	}
}

func newSharedScheduler(n *Network, cfg schedulerConfig) (Scheduler, error) {
	switch cfg.algorithm {
	case PrimalDual:
		if cfg.horizon < 1 {
			return nil, fmt.Errorf("%w: algorithm %q needs WithHorizon", ErrBadScheduler, cfg.algorithm)
		}
		opts := []shared.Option{shared.WithRecorder(cfg.rec)}
		if cfg.poolSize != 0 {
			opts = append(opts, shared.WithPoolSize(cfg.poolSize))
		}
		s, err := shared.NewScheduler(n, cfg.horizon, opts...)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadScheduler, err)
		}
		return s, nil
	case RawPrimalDual, Greedy, FirstFit, Random:
		return nil, fmt.Errorf("%w: algorithm %q not available under the shared scheme", ErrBadScheduler, cfg.algorithm)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadScheduler, cfg.algorithm)
	}
}

// AllowsViolations reports whether the algorithm may overcommit capacity
// and therefore needs RunAllowingViolations / serve.Config.AllowViolations.
// Only RawPrimalDual does.
func (a Algorithm) AllowsViolations() bool { return a == RawPrimalDual }

// Valid reports whether a names a known algorithm.
func (a Algorithm) Valid() bool {
	switch a {
	case PrimalDual, RawPrimalDual, Greedy, FirstFit, Random:
		return true
	}
	return false
}
