package revnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestChainFacadeEndToEnd drives the SFC extension through the public API.
func TestChainFacadeEndToEnd(t *testing.T) {
	network := &Network{Catalog: DefaultCatalog()}
	for j := 0; j < 5; j++ {
		network.Cloudlets = append(network.Cloudlets, Cloudlet{
			ID: j, Node: j, Capacity: 12, Reliability: 0.985 + 0.003*float64(j),
		})
	}
	const horizon = 25
	cfg := ChainTraceConfig{
		Requests: 120, Horizon: horizon, MinLength: 1, MaxLength: 3,
		MinDuration: 1, MaxDuration: 6,
		MinRequirement: 0.85, MaxRequirement: 0.93,
		MaxPaymentRate: 10, H: 6,
	}
	trace, err := GenerateChainTrace(cfg, network.Catalog, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("GenerateChainTrace: %v", err)
	}
	inst := &ChainInstance{Network: network, Horizon: horizon, Trace: trace}
	for _, build := range []func() (ChainScheduler, error){
		func() (ChainScheduler, error) { return NewChainOnsiteScheduler(network, horizon) },
		func() (ChainScheduler, error) { return NewChainOffsiteScheduler(network, horizon) },
		func() (ChainScheduler, error) { return NewGreedyChainOnsite(network, horizon) },
		func() (ChainScheduler, error) { return NewGreedyChainOffsite(network, horizon) },
	} {
		sched, err := build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		res, err := RunChains(inst, sched)
		if err != nil {
			t.Fatalf("RunChains %s: %v", sched.Name(), err)
		}
		if res.Admitted == 0 {
			t.Errorf("%s admitted nothing", sched.Name())
		}
	}
	alloc, err := ChainOnsiteAllocation(network.Catalog, []int{0, 3}, 0.999, 0.95)
	if err != nil {
		t.Fatalf("ChainOnsiteAllocation: %v", err)
	}
	if len(alloc) != 2 || alloc[0] < 1 || alloc[1] < 1 {
		t.Errorf("allocation = %v", alloc)
	}
}

// TestPoolFacade drives shared backup pooling through the public API.
func TestPoolFacade(t *testing.T) {
	s, err := PoolSurvival(4, 2, 0.9)
	if err != nil {
		t.Fatalf("PoolSurvival: %v", err)
	}
	if s <= 0.9 || s >= 1 {
		t.Errorf("PoolSurvival = %v", s)
	}
	b, err := PoolMinBackups(4, 0.9, 0.99, 0.9)
	if err != nil {
		t.Fatalf("PoolMinBackups: %v", err)
	}
	if b < 1 {
		t.Errorf("PoolMinBackups = %d", b)
	}
	cfg := DefaultInstanceConfig(80)
	cfg.Cloudlets.Count = 4
	cfg.Trace.Horizon = 20
	cfg.Trace.MaxDuration = 5
	inst, err := NewInstance(cfg, 4)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	res, err := RunPooled(inst)
	if err != nil {
		t.Fatalf("RunPooled: %v", err)
	}
	if res.Admitted == 0 {
		t.Error("pooled admission admitted nothing")
	}
	if res.BackupUnits > res.DedicatedBackupUnits {
		t.Errorf("pooled backups %d exceed dedicated %d", res.BackupUnits, res.DedicatedBackupUnits)
	}
}

// TestQoSAndTimelineFacade drives the QoS and timeline analyses through
// the public API.
func TestQoSAndTimelineFacade(t *testing.T) {
	names := TopologyNames()
	if len(names) != 5 {
		t.Fatalf("TopologyNames = %v", names)
	}
	g, err := LoadTopology(names[0])
	if err != nil {
		t.Fatalf("LoadTopology: %v", err)
	}
	cfg := DefaultInstanceConfig(60)
	cfg.TopologyName = names[0]
	cfg.Cloudlets.Count = 5
	cfg.Trace.Horizon = 20
	cfg.Trace.MaxDuration = 5
	inst, err := NewInstance(cfg, 5)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	sched, err := NewScheduler(inst.Network, OffSite, WithHorizon(inst.Horizon))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	res, err := Run(inst, sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	qosRep, err := AssessQoS(inst.Network, g, inst.Trace, res.AdmittedPlacements())
	if err != nil {
		t.Fatalf("AssessQoS: %v", err)
	}
	if len(qosRep.PerPlacement) != res.Admitted {
		t.Errorf("QoS entries %d, want %d", len(qosRep.PerPlacement), res.Admitted)
	}
	tlRep, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, res.AdmittedPlacements(),
		TimelineConfig{CloudletMTTR: 3, InstanceMTTR: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("SimulateTimeline: %v", err)
	}
	if tlRep.MeanDelivered <= 0 || tlRep.MeanDelivered > 1 {
		t.Errorf("MeanDelivered = %v", tlRep.MeanDelivered)
	}
}

// TestIOFacade round-trips instances and CSV traces through the public
// API.
func TestIOFacade(t *testing.T) {
	cfg := DefaultInstanceConfig(25)
	cfg.Trace.Horizon = 15
	cfg.Trace.MaxDuration = 4
	inst, err := NewInstance(cfg, 6)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	var buf bytes.Buffer
	if err := inst.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadInstance(&buf)
	if err != nil {
		t.Fatalf("LoadInstance: %v", err)
	}
	if len(loaded.Trace) != len(inst.Trace) {
		t.Fatalf("trace length %d, want %d", len(loaded.Trace), len(inst.Trace))
	}
	var csvBuf strings.Builder
	if err := ExportTraceCSV(&csvBuf, inst.Network.Catalog, inst.Trace); err != nil {
		t.Fatalf("ExportTraceCSV: %v", err)
	}
	trace, err := ImportTraceCSV(strings.NewReader(csvBuf.String()), inst.Network.Catalog, inst.Horizon)
	if err != nil {
		t.Fatalf("ImportTraceCSV: %v", err)
	}
	for i := range trace {
		if trace[i] != inst.Trace[i] {
			t.Fatalf("request %d differs after CSV round trip", i)
		}
	}
}

// TestAnalyzeAndExperimentFacade exercises the remaining facade surface.
func TestAnalyzeAndExperimentFacade(t *testing.T) {
	cfg := DefaultInstanceConfig(30)
	cfg.Trace.Horizon = 15
	cfg.Trace.MaxDuration = 4
	inst, err := NewInstance(cfg, 8)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	analysis, err := AnalyzeOnsite(inst.Network, inst.Trace)
	if err != nil {
		t.Fatalf("AnalyzeOnsite: %v", err)
	}
	if analysis.CompetitiveRatio <= 1 {
		t.Errorf("CompetitiveRatio = %v", analysis.CompetitiveRatio)
	}
	setup := DefaultExperimentSetup()
	setup.Cloudlets = 4
	setup.Horizon = 15
	setup.MaxDur = 4
	setup.Seeds = []int64{1}
	setup.Optimal = 0 // exercise the invalid-mode path through Validate
	if err := setup.Validate(); err == nil {
		t.Error("invalid optimal mode accepted")
	}
}

func TestLoadTopologyJSONFacade(t *testing.T) {
	g, err := LoadTopology("abilene")
	if err != nil {
		t.Fatalf("LoadTopology: %v", err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadTopologyJSON(&buf)
	if err != nil {
		t.Fatalf("LoadTopologyJSON: %v", err)
	}
	if got.Nodes() != g.Nodes() || got.EdgeCount() != g.EdgeCount() {
		t.Errorf("round trip shape %d/%d vs %d/%d", got.Nodes(), got.EdgeCount(), g.Nodes(), g.EdgeCount())
	}
}
